package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpuresilience/internal/coalesce"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// checkpointVersion guards the on-disk format; Load rejects other versions
// instead of silently misreading state.
const checkpointVersion = 1

// SourceCheckpoint is one ingest source's replay position: the engine-side
// accounting plus the tailer's byte offset into the file (zero for
// in-process feeds). On resume a tailer seeks to Offset and the engine's
// line high-water mark absorbs any redelivered lines.
type SourceCheckpoint struct {
	// Name identifies the source (the tailed path, or a feed's name).
	Name string `json:"name"`
	// Lines is the consumed line-number high-water mark.
	Lines int64 `json:"lines"`
	// Bytes counts consumed line bytes.
	Bytes int64 `json:"bytes"`
	// Dups counts redelivered lines absorbed by the high-water mark.
	Dups int64 `json:"dups,omitempty"`
	// ClockRegressions counts events timestamped before a predecessor.
	ClockRegressions int64 `json:"clockRegressions,omitempty"`
	// LastEvent is the newest event time seen from this source.
	LastEvent time.Time `json:"lastEvent,omitempty"`
	// Offset is the byte offset the source's tailer had consumed through.
	Offset int64 `json:"offset,omitempty"`
}

// CoalescerState is the persistent coalescer's checkpointed form.
type CoalescerState struct {
	// Entries are the open per-(node,gpu,code) windows.
	Entries []coalesce.KeyState `json:"entries,omitempty"`
	// Raw and Kept restore the coalescer's event accounting.
	Raw  int `json:"raw"`
	Kept int `json:"kept"` // see Raw
}

// Checkpoint is a replayable record of a streaming run — the run-manifest
// idea extended with resume state. A daemon restarted from a checkpoint
// continues from the last sealed watermark: sealed results, the pending
// buffer, the coalescer's open windows, per-source positions, and the
// quarantine all carry over, so it never re-reads history and redelivered
// lines dedupe against the per-source line marks.
type Checkpoint struct {
	// Version is the on-disk format version; Resume rejects others.
	Version int `json:"version"`
	// Manifest is the provenance record (tool, go version, pipeline
	// settings, input digests) the batch CLIs emit, reused unchanged.
	Manifest *obs.RunManifest `json:"manifest,omitempty"`

	// Horizon is the watermark horizon the run used; Resume refuses a
	// mismatch, since it changes which events would have been quarantined.
	Horizon time.Duration `json:"horizon"`
	// Watermark and HasWatermark restore the sealing frontier.
	Watermark    time.Time `json:"watermark"`
	HasWatermark bool      `json:"hasWatermark"` // see Watermark
	// MaxEventTime and HasMaxEvent restore the newest-event tracker.
	MaxEventTime time.Time `json:"maxEventTime"`
	HasMaxEvent  bool      `json:"hasMaxEvent"` // see MaxEventTime

	// SealedRaw counts sealed events pre-coalescing.
	SealedRaw int `json:"sealedRaw"`
	// Sealed is the coalesced Stage II store in canonical order.
	Sealed []xid.Event `json:"sealed,omitempty"`
	// Pending holds unsealed events in arrival order.
	Pending []xid.Event `json:"pending,omitempty"`

	// Coalescer restores the open coalescing windows.
	Coalescer CoalescerState `json:"coalescer"`
	// Extract is the cumulative Stage I line accounting.
	Extract syslog.ExtractStats `json:"extract"`
	// Quarantine carries the late-event record across restarts.
	Quarantine Quarantine `json:"quarantine"`
	// Sources are the per-source replay positions, sorted by name.
	Sources []SourceCheckpoint `json:"sources,omitempty"`
	// Gen is the engine's change counter at checkpoint time.
	Gen uint64 `json:"gen"`
}

// Checkpoint snapshots the engine into a replayable record. The daemon adds
// tailer offsets and the manifest before saving.
func (e *Engine) Checkpoint() *Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	entries, raw, kept := e.co.State()
	cp := &Checkpoint{
		Version:      checkpointVersion,
		Horizon:      e.cfg.Horizon,
		Watermark:    e.watermark,
		HasWatermark: e.hasWatermark,
		MaxEventTime: e.maxEvent,
		HasMaxEvent:  e.hasMaxEvent,
		SealedRaw:    e.sealedRaw,
		Sealed:       append([]xid.Event(nil), e.sealed...),
		Pending:      append([]xid.Event(nil), e.pending...),
		Coalescer:    CoalescerState{Entries: entries, Raw: raw, Kept: kept},
		Extract:      e.extract,
		Quarantine: Quarantine{
			Late:    e.quarantine.Late,
			Samples: append([]LateEvent(nil), e.quarantine.Samples...),
		},
		Gen: e.gen,
	}
	for name, src := range e.sources {
		cp.Sources = append(cp.Sources, SourceCheckpoint{
			Name:             name,
			Lines:            src.lines,
			Bytes:            src.bytes,
			Dups:             src.dups,
			ClockRegressions: src.clockRegs,
			LastEvent:        src.lastEvent,
		})
	}
	sortSourceCheckpoints(cp.Sources)
	return cp
}

func sortSourceCheckpoints(s []SourceCheckpoint) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Resume rebuilds an engine from a checkpoint. cfg supplies the analysis
// settings and static inputs (jobs, downtimes, CPU record) — those are not
// checkpointed; the checkpoint carries only stream state. The coalescer is
// restored with cfg's window, which must match the checkpointed run for the
// resumed output to stay equivalent.
func Resume(cfg Config, cp *Checkpoint) (*Engine, error) {
	if cp == nil {
		return New(cfg)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cp.Horizon != cfg.Horizon {
		return nil, fmt.Errorf("stream: checkpoint horizon %v, config %v", cp.Horizon, cfg.Horizon)
	}
	co, err := coalesce.Restore(cfg.Pipeline.CoalesceWindow, cp.Coalescer.Entries, cp.Coalescer.Raw, cp.Coalescer.Kept)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:          cfg,
		co:           co,
		pending:      append([]xid.Event(nil), cp.Pending...),
		sealed:       append([]xid.Event(nil), cp.Sealed...),
		sealedRaw:    cp.SealedRaw,
		watermark:    cp.Watermark,
		hasWatermark: cp.HasWatermark,
		maxEvent:     cp.MaxEventTime,
		hasMaxEvent:  cp.HasMaxEvent,
		extract:      cp.Extract,
		quarantine: Quarantine{
			Late:    cp.Quarantine.Late,
			Samples: append([]LateEvent(nil), cp.Quarantine.Samples...),
		},
		sources: make(map[string]*sourceState, len(cp.Sources)),
		gen:     cp.Gen,
	}
	for _, src := range cp.Sources {
		e.sources[src.Name] = &sourceState{
			lines:     src.Lines,
			bytes:     src.Bytes,
			dups:      src.Dups,
			clockRegs: src.ClockRegressions,
			lastEvent: src.LastEvent,
		}
	}
	return e, nil
}

// SaveCheckpoint writes the checkpoint atomically: a temp file in the
// target directory, fsynced, then renamed over the destination, so a crash
// mid-write never leaves a torn checkpoint behind.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("stream: checkpoint %s: %w", path, err)
	}
	return &cp, nil
}
