package stream_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuresilience/internal/obs"
	"gpuresilience/internal/stream"
	"gpuresilience/internal/xid"
)

// serveFixture builds a tiny published snapshot behind a test server.
func serveFixture(t *testing.T, reg *obs.Registry) (*stream.Server, *httptest.Server) {
	t.Helper()
	eng := newEngine(t)
	feed := stream.NewFeed(eng, "feed")
	for i, off := range []time.Duration{0, 10 * time.Second, time.Minute} {
		if err := feed.Event(event(off, "gpub001", i%4, xid.MMU)); err != nil {
			t.Fatal(err)
		}
	}
	eng.FlushAll()
	snap, err := stream.BuildSnapshot(eng)
	if err != nil {
		t.Fatal(err)
	}
	man := obs.NewRunManifest("gpuresilienced")
	srv := stream.NewServer(reg, man, nil)
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestServerTablesAndETags: every table serves JSON with a strong ETag; a
// conditional re-fetch with that validator gets 304 and no body; the text
// representation has its own validator.
func TestServerTablesAndETags(t *testing.T) {
	reg := obs.New()
	_, ts := serveFixture(t, reg)

	for _, name := range stream.TableNames() {
		url := ts.URL + "/v1/tables/" + name
		resp := get(t, url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", name, ct)
		}
		tag := resp.Header.Get("ETag")
		if !strings.HasPrefix(tag, `"`) {
			t.Fatalf("%s: ETag %q not a quoted validator", name, tag)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: body not JSON: %v", name, err)
		}
		if _, ok := doc["status"]; !ok {
			t.Fatalf("%s: JSON body missing embedded status", name)
		}

		// Conditional re-fetch: 304, same validator.
		resp2 := get(t, url, map[string]string{"If-None-Match": tag})
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: conditional status %d, want 304", name, resp2.StatusCode)
		}
		if got := resp2.Header.Get("ETag"); got != tag {
			t.Fatalf("%s: 304 ETag %q, want %q", name, got, tag)
		}

		// Multi-validator and wildcard forms match too.
		for _, inm := range []string{`"stale", ` + tag, "*", "W/" + tag} {
			if r := get(t, url, map[string]string{"If-None-Match": inm}); r.StatusCode != http.StatusNotModified {
				t.Fatalf("%s: If-None-Match %q got %d, want 304", name, inm, r.StatusCode)
			}
		}

		// Text representation: different body, own ETag.
		textResp := get(t, url+"?format=text", nil)
		if textResp.StatusCode != http.StatusOK {
			t.Fatalf("%s text: status %d", name, textResp.StatusCode)
		}
		if ct := textResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s text: content type %q", name, ct)
		}
		if textTag := textResp.Header.Get("ETag"); textTag == tag {
			t.Fatalf("%s: text and JSON share an ETag", name)
		}

		// Accept negotiation selects text as well.
		acceptResp := get(t, url, map[string]string{"Accept": "text/plain"})
		if ct := acceptResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s: Accept text/plain served %q", name, ct)
		}
	}
	if reg.Counter("http.notmodified").Value() == 0 {
		t.Fatal("no 304s recorded in metrics")
	}
}

// TestServerColdStartAndErrors: before the first publish everything data-
// bearing is 503; unknown tables 404; wrong methods 405.
func TestServerColdStartAndErrors(t *testing.T) {
	srv := stream.NewServer(nil, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp := get(t, ts.URL+"/v1/tables/xidstat", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold table status %d, want 503", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold healthz status %d, want 503", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/v1/manifest", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("manifest without one: %d, want 404", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/v1/metrics", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics without registry: %d, want 404", resp.StatusCode)
	}

	_, served := serveFixture(t, nil)
	if resp := get(t, served.URL+"/v1/tables/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, served.URL+"/v1/tables/xidstat", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

// TestServerHealthzMetricsManifest: the operational endpoints.
func TestServerHealthzMetricsManifest(t *testing.T) {
	reg := obs.New()
	reg.Counter("stream.snapshots").Add(1)
	_, ts := serveFixture(t, reg)

	resp := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz struct {
		OK     bool `json:"ok"`
		Status struct {
			SealedEvents int `json:"sealedEvents"`
		} `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.Status.SealedEvents == 0 {
		t.Fatalf("healthz = %+v", hz)
	}

	resp = get(t, ts.URL+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var rep struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Counters["stream.snapshots"] != 1 {
		t.Fatalf("metrics counters = %+v", rep.Metrics.Counters)
	}

	resp = get(t, ts.URL+"/v1/manifest", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status %d", resp.StatusCode)
	}
	var man struct {
		Tool string `json:"tool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "gpuresilienced" {
		t.Fatalf("manifest tool = %q", man.Tool)
	}
}
