package core_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/core"
	"gpuresilience/internal/slurmsim"
	"gpuresilience/internal/stats"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/workload"
	"gpuresilience/internal/xid"
)

var (
	preOp = calib.PreOp()
	op    = calib.Op()
)

func pipeCfg() core.PipelineConfig {
	return core.DefaultPipelineConfig(preOp, op, calib.Nodes)
}

func ev(at time.Time, node string, gpu int, code xid.Code) xid.Event {
	return xid.Event{Time: at, Node: node, GPU: gpu, Code: code}
}

func TestAnalyzeTableICountsAndMTBE(t *testing.T) {
	var events []xid.Event
	// 100 op-period MMU errors spaced a day apart on one GPU.
	for i := 0; i < 100; i++ {
		events = append(events, ev(op.Start.Add(time.Duration(i)*24*time.Hour), "n1", 0, xid.MMU))
	}
	// 10 RREs and 2 RRFs in pre-op.
	for i := 0; i < 10; i++ {
		events = append(events, ev(preOp.Start.Add(time.Duration(i)*24*time.Hour), "n2", 1, xid.RRE))
	}
	for i := 0; i < 2; i++ {
		events = append(events, ev(preOp.Start.Add(time.Duration(i)*24*time.Hour+time.Hour), "n2", 2, xid.RRF))
	}
	// Excluded software code must not appear.
	events = append(events, ev(op.Start.Add(time.Hour), "n1", 0, xid.GPUSoftware))

	res, err := core.Analyze(events, nil, nil, workload.CPURecord{}, pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	mmu, ok := res.Row(xid.GroupMMU)
	if !ok || mmu.Op.Count != 100 || mmu.PreOp.Count != 0 {
		t.Fatalf("MMU row = %+v", mmu)
	}
	wantSys := op.Hours() / 100
	if math.Abs(mmu.Op.MTBE.SystemWide-wantSys) > 1e-9 {
		t.Fatalf("MMU MTBE = %v, want %v", mmu.Op.MTBE.SystemWide, wantSys)
	}
	if math.Abs(mmu.Op.MTBE.PerNode-wantSys*calib.Nodes) > 1e-6 {
		t.Fatalf("MMU per-node MTBE = %v", mmu.Op.MTBE.PerNode)
	}
	// Derived uncorrectable ECC row = RRE + RRF.
	unc, ok := res.Row(xid.GroupUncorrECC)
	if !ok || unc.PreOp.Count != 12 {
		t.Fatalf("uncorrectable ECC row = %+v", unc)
	}
	// Pre-op total: RRE 10 + RRF 2 + derived 12 = 24 (paper-style double
	// count); op total: MMU 100.
	if res.PreSummary.Total != 24 || res.OpSummary.Total != 100 {
		t.Fatalf("totals = %d / %d", res.PreSummary.Total, res.OpSummary.Total)
	}
	if res.CoalescedEvents != 113 {
		t.Fatalf("coalesced = %d (software code must be ignored by Table I but kept in stream)", res.CoalescedEvents)
	}
}

func TestAnalyzeOutlierExclusion(t *testing.T) {
	cfg := pipeCfg()
	cfg.OutlierStreamFraction = 0.25
	cfg.OutlierMinCount = 50
	var events []xid.Event
	// One stream bursts 200 errors; another has 10.
	for i := 0; i < 200; i++ {
		events = append(events, ev(preOp.Start.Add(time.Duration(i)*time.Hour), "bad", 3, xid.UncontainedMem))
	}
	for i := 0; i < 10; i++ {
		events = append(events, ev(preOp.Start.Add(time.Duration(i)*24*time.Hour), "ok", 0, xid.MMU))
	}
	res, err := core.Analyze(events, nil, nil, workload.CPURecord{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreSummary.Total != 210 {
		t.Fatalf("total = %d", res.PreSummary.Total)
	}
	if res.PreSummary.OutlierErrors != 200 || res.PreSummary.TotalExclOutliers != 10 {
		t.Fatalf("summary = %+v", res.PreSummary)
	}
	wantPerNode := preOp.Hours() / 10 * calib.Nodes
	if math.Abs(res.PreSummary.PerNodeMTBE-wantPerNode) > 1e-6 {
		t.Fatalf("per-node MTBE = %v, want %v", res.PreSummary.PerNodeMTBE, wantPerNode)
	}
}

func TestAnalyzeCoalescesDuplicates(t *testing.T) {
	base := op.Start.Add(time.Hour)
	events := []xid.Event{
		ev(base, "n1", 0, xid.NVLink),
		ev(base.Add(100*time.Millisecond), "n1", 0, xid.NVLink), // dup
		ev(base.Add(time.Minute), "n1", 0, xid.NVLink),          // real repeat
	}
	res, err := core.Analyze(events, nil, nil, workload.CPURecord{}, pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.RawEvents != 3 || res.CoalescedEvents != 2 {
		t.Fatalf("raw=%d coalesced=%d", res.RawEvents, res.CoalescedEvents)
	}
	row, _ := res.Row(xid.GroupNVLink)
	if row.Op.Count != 2 {
		t.Fatalf("NVLink count = %d", row.Op.Count)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	cfg := pipeCfg()
	cfg.Nodes = 0
	if _, err := core.Analyze(nil, nil, nil, workload.CPURecord{}, cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = pipeCfg()
	cfg.PreOp = stats.Period{Start: op.End, End: op.Start}
	if _, err := core.Analyze(nil, nil, nil, workload.CPURecord{}, cfg); err == nil {
		t.Fatal("bad period accepted")
	}
}

func TestAnalyzeLogsStageI(t *testing.T) {
	var logs bytes.Buffer
	w, err := syslog.NewWriter(&logs, syslog.DefaultWriterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := op.Start.Add(time.Hour)
	for i := 0; i < 20; i++ {
		if _, err := w.WriteEvent(ev(base.Add(time.Duration(i)*time.Minute), "gpub007", 2, xid.GSPRPCTimeout)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var jobDB bytes.Buffer
	if err := slurmsim.DumpDB(&jobDB, nil); err != nil {
		t.Fatal(err)
	}

	res, err := core.AnalyzeLogs(&logs, &jobDB, nil, workload.CPURecord{}, pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Extract.XIDLines < 20 {
		t.Fatalf("extract stats = %+v", res.Extract)
	}
	row, _ := res.Row(xid.GroupGSP)
	if row.Op.Count != 20 {
		t.Fatalf("GSP count = %d, want 20 after coalescing duplicates", row.Op.Count)
	}
}

// TestEndToEndSmallScale runs the full calibrated reproduction at 1% scale:
// simulate -> raw logs -> extract -> coalesce -> characterize, and checks
// the pipeline recovers the simulator's ground-truth event stream exactly.
func TestEndToEndSmallScale(t *testing.T) {
	sc := calib.NewScenario(42, 0.01)
	out, err := core.EndToEnd(core.EndToEndConfig{
		Cluster:  sc.Cluster,
		Pipeline: pipeCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results

	// The pipeline must recover the simulator's coalesced-level events
	// despite duplication and noise in the raw logs. Small biases are
	// inherent to Δt coalescing (a duplicate train can outlast the window;
	// a genuine repeat can fall inside it), so allow 2%.
	truthN := len(out.Truth.Events)
	if diff := res.CoalescedEvents - truthN; diff < -truthN/50 || diff > truthN/50 {
		t.Fatalf("pipeline recovered %d events, truth has %d",
			res.CoalescedEvents, truthN)
	}
	if out.RawLogLines <= len(out.Truth.Events) {
		t.Fatalf("raw lines %d should exceed true events %d (duplication)",
			out.RawLogLines, len(out.Truth.Events))
	}
	if res.Extract.Skipped == 0 {
		t.Fatal("no noise lines were skipped — noise generation broken")
	}

	// Scaled quotas: ~1% of Table I (loose bounds; cascades are random).
	mmu, _ := res.Row(xid.GroupMMU)
	if mmu.Op.Count < 50 || mmu.Op.Count > 140 {
		t.Fatalf("op MMU count = %d, want ~88", mmu.Op.Count)
	}
	unc, _ := res.Row(xid.GroupUncontained)
	if unc.PreOp.Count < 300 || unc.PreOp.Count > 460 {
		t.Fatalf("pre-op uncontained = %d, want ~389 (scaled burst)", unc.PreOp.Count)
	}
	// The burst stream dominates the pre-op period and is flagged as the
	// outlier even at 1% scale (fraction-based detection is scale-free).
	if res.PreSummary.OutlierErrors < 300 {
		t.Fatalf("burst not flagged as outlier: %d", res.PreSummary.OutlierErrors)
	}

	// Jobs ran and mostly succeeded.
	if res.JobStats.GPUTotal < 10000 {
		t.Fatalf("GPU jobs = %d", res.JobStats.GPUTotal)
	}
	if res.JobStats.GPUSuccessRate < 0.70 || res.JobStats.GPUSuccessRate > 0.80 {
		t.Fatalf("GPU success rate = %.3f", res.JobStats.GPUSuccessRate)
	}
	if math.Abs(res.JobStats.CPUSuccessRate-0.749) > 0.02 {
		t.Fatalf("CPU success rate = %.3f", res.JobStats.CPUSuccessRate)
	}

	// Availability pieces exist.
	if res.Avail.Repairs == 0 || res.Avail.MTTRHours <= 0 {
		t.Fatalf("avail = %+v", res.Avail)
	}
	if res.Avail.Availability <= 0.9 || res.Avail.Availability >= 1 {
		t.Fatalf("availability = %v", res.Avail.Availability)
	}
}

func TestEndToEndKeepsRawLogs(t *testing.T) {
	sc := calib.NewScenario(7, 0.002)
	sc.Cluster.Workload = nil // faster: errors only
	var raw bytes.Buffer
	out, err := core.EndToEnd(core.EndToEndConfig{
		Cluster:     sc.Cluster,
		Pipeline:    pipeCfg(),
		KeepRawLogs: &raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() == 0 {
		t.Fatal("raw logs not captured")
	}
	// Re-analyzing the captured logs reproduces the same Table I.
	res2, err := core.AnalyzeLogs(bytes.NewReader(raw.Bytes()), nil, nil,
		workload.CPURecord{}, pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res2.CoalescedEvents != out.Results.CoalescedEvents {
		t.Fatalf("re-analysis: %d vs %d events", res2.CoalescedEvents, out.Results.CoalescedEvents)
	}
}
