package core_test

import (
	"bytes"
	"testing"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/core"
	"gpuresilience/internal/report"
	"gpuresilience/internal/slurmsim"
	"gpuresilience/internal/workload"
)

// TestParallelPipelineEquivalence is the determinism guarantee of the
// sharded pipeline, checked end to end over a full simulated dataset: the
// raw log and job DB of a scale-0.1 run are re-analyzed from bytes with
// Workers ∈ {1, 4, 16}, and the rendered Table I, Table II, and Table III
// must be byte-identical across all worker counts (1 is the sequential
// path). Skipped under -short: the simulation takes a few seconds.
func TestParallelPipelineEquivalence(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	sc := calib.NewScenario(1, scale)

	var rawLogs bytes.Buffer
	out, err := core.EndToEnd(core.EndToEndConfig{
		Cluster:     sc.Cluster,
		Pipeline:    core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes),
		KeepRawLogs: &rawLogs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobsDB bytes.Buffer
	if err := slurmsim.DumpDB(&jobsDB, out.Truth.Jobs); err != nil {
		t.Fatal(err)
	}
	t.Logf("dataset: %d raw log bytes, %d jobs", rawLogs.Len(), len(out.Truth.Jobs))

	render := func(workers int) string {
		cfg := core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes)
		cfg.Workers = workers
		res, err := core.AnalyzeLogs(bytes.NewReader(rawLogs.Bytes()),
			bytes.NewReader(jobsDB.Bytes()), nil, workload.CPURecord{}, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		for _, write := range []func(*bytes.Buffer) error{
			func(b *bytes.Buffer) error { return report.WriteTableI(b, res) },
			func(b *bytes.Buffer) error { return report.WriteTableII(b, res) },
			func(b *bytes.Buffer) error { return report.WriteTableIII(b, res) },
		} {
			if err := write(&buf); err != nil {
				t.Fatalf("workers=%d: render: %v", workers, err)
			}
			buf.WriteByte('\n')
		}
		if res.CoalescedEvents == 0 {
			t.Fatalf("workers=%d: no coalesced events", workers)
		}
		return buf.String()
	}

	want := render(1)
	for _, workers := range []int{4, 16} {
		if got := render(workers); got != want {
			t.Errorf("Workers=%d output diverges from the sequential pipeline:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}
