// Package core is the study's characterization pipeline (Fig. 1) packaged
// end to end:
//
//	Stage I   — regex extraction of XID records from raw system logs
//	            (internal/syslog) and job records from the Slurm database
//	            (internal/slurmsim).
//	Stage II  — error coalescing with a Δt window (internal/coalesce).
//	Stage III — resilience statistics (Table I), job-impact correlation
//	            (Table II), workload statistics (Table III), and
//	            availability analysis (Figure 2).
//
// Analyze consumes parsed inputs; AnalyzeLogs runs Stage I first; EndToEnd
// runs the whole reproduction: simulate the cluster, emit raw logs, read
// them back, and characterize.
package core

import (
	"fmt"
	"io"
	"time"

	"gpuresilience/internal/avail"
	"gpuresilience/internal/cluster"
	"gpuresilience/internal/coalesce"
	"gpuresilience/internal/impact"
	"gpuresilience/internal/ingest"
	"gpuresilience/internal/intern"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/parallel"
	"gpuresilience/internal/slurmsim"
	"gpuresilience/internal/stats"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/workload"
	"gpuresilience/internal/xid"
)

// PipelineConfig parameterizes the analysis stages.
type PipelineConfig struct {
	// CoalesceWindow is Stage II's Δt.
	CoalesceWindow time.Duration
	// AttributionWindow is Stage III's job-failure window.
	AttributionWindow time.Duration
	// PreOp and Op bound the paper's pre-operational and operational
	// study periods; every table is computed per period.
	PreOp stats.Period
	Op    stats.Period // see PreOp
	// Nodes is the per-node MTBE multiplier (106 on Delta).
	Nodes int
	// OutlierStreamFraction marks a (node, GPU, code) stream as an outlier
	// when it alone contributes more than this fraction of a period's
	// errors (and at least OutlierMinCount of them); outliers are excluded
	// from the headline per-node MTBE the way the SREs excluded the
	// 38,900-error faulty GPU. Zero disables outlier exclusion.
	OutlierStreamFraction float64
	// OutlierMinCount is the absolute floor below which a stream is never
	// an outlier, guarding small datasets.
	OutlierMinCount int
	// Workers bounds each pipeline stage's parallelism: sharded Stage I
	// extraction, key-sharded Stage II coalescing, and the Stage III
	// fan-out each use at most this many goroutines. 0 means GOMAXPROCS,
	// 1 forces the sequential path. Every table and figure is
	// worker-count-invariant — see docs/pipeline.md for the argument.
	Workers int
	// Lenient switches Stage I to corruption-tolerant extraction: damaged
	// lines are classified, quarantined, and skipped instead of failing the
	// run, and Results.Ingestion carries the structured report. See
	// docs/robustness.md for the taxonomy and the recovery guarantee.
	Lenient bool
	// MaxBadLines is the lenient mode's absolute error budget: more than
	// this many corrupt lines fails the run with a syslog.BudgetError.
	// 0 means unlimited. Implies nothing in strict mode.
	MaxBadLines int
	// MaxBadFrac is the lenient mode's whole-stream corrupt-fraction
	// budget, checked at EOF. 0 means unlimited.
	MaxBadFrac float64
	// Obs receives per-stage spans (wall time, items in/out, bytes read,
	// per-worker utilization) and pipeline counters when non-nil. Nil — the
	// default — disables instrumentation at zero cost. Excluded from
	// serialized run manifests: a registry is a sink, not a setting.
	Obs *obs.Registry `json:"-"`
}

// lenientOptions maps the pipeline's lenient settings onto Stage I options.
func (c PipelineConfig) lenientOptions() syslog.LenientOptions {
	return syslog.LenientOptions{
		MaxBadLines: c.MaxBadLines,
		MaxBadFrac:  c.MaxBadFrac,
	}
}

// DefaultPipelineConfig returns the paper's analysis settings.
func DefaultPipelineConfig(preOp, op stats.Period, nodes int) PipelineConfig {
	return PipelineConfig{
		CoalesceWindow:        coalesce.DefaultWindow,
		AttributionWindow:     impact.DefaultAttributionWindow,
		PreOp:                 preOp,
		Op:                    op,
		Nodes:                 nodes,
		OutlierStreamFraction: 0.25,
		OutlierMinCount:       100,
	}
}

func (c PipelineConfig) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("core: non-positive node count %d", c.Nodes)
	}
	if err := c.PreOp.Validate(); err != nil {
		return err
	}
	return c.Op.Validate()
}

// TableIRow is one computed Table I row.
type TableIRow struct {
	Group    xid.Group    // the Xid group the row aggregates
	Category xid.Category // the paper's coarse error category
	PreOp    Cell         // pre-operational period count + MTBE
	Op       Cell         // operational period count + MTBE
}

// Cell is one count + MTBE cell. MTBE fields are zero when Count is zero
// (rendered as "-").
type Cell struct {
	Count int        // coalesced errors in the period
	MTBE  stats.MTBE // mean time between errors over the period
}

// PeriodSummary aggregates one period.
type PeriodSummary struct {
	Period stats.Period // the period the summary covers
	// Total counts every Table I row (including the derived uncorrectable
	// ECC row, matching the paper's 42,405 / 14,821 totals).
	Total int
	// TotalExclOutliers removes outlier bursts (the faulty GPU's 38,900).
	TotalExclOutliers int
	// PerNodeMTBE uses TotalExclOutliers (the paper's headline numbers).
	PerNodeMTBE float64
	// MemoryPerNodeMTBE and HardwarePerNodeMTBE drive finding (ii); the
	// hardware figure includes the interconnect, as the paper's 160x does.
	MemoryPerNodeMTBE   float64
	HardwarePerNodeMTBE float64 // see MemoryPerNodeMTBE
	// OutlierErrors is how many errors outlier streams contributed.
	OutlierErrors int
}

// Results is the full pipeline output.
type Results struct {
	Extract syslog.ExtractStats // Stage I line/match/skip counts
	// Ingestion is the structured Stage I report of a lenient run: lines
	// scanned, per-category corrupt-line counts, quarantine samples, and
	// budget status. Nil on strict (default) runs.
	Ingestion *syslog.IngestionReport
	// RawEvents and CoalescedEvents count Stage II input/output.
	RawEvents       int
	CoalescedEvents int // see RawEvents

	TableI     []TableIRow   // per-group error counts and MTBE (paper Table I)
	PreSummary PeriodSummary // pre-operational period totals
	OpSummary  PeriodSummary // operational period totals

	TableII  impact.Correlation   // Xid-to-job-failure correlation (paper Table II)
	TableIII []impact.TableIIIRow // downtime-bucket impact rows (paper Table III)
	JobStats impact.JobStats      // GPU/CPU job success-rate comparison

	Avail avail.Analysis // node availability and downtime distribution

	// Shards records the per-file provenance of a sharded multi-file run
	// (AnalyzeLogFiles): each input's content digest, event count, and
	// cache outcome, in plan order. Nil on single-stream runs.
	Shards []ingest.ShardInfo
}

// Analyze runs Stages II and III over parsed inputs. repairs are the node
// unavailability intervals; cpu is the CPU-partition summary for §V-A.
func Analyze(events []xid.Event, jobs []*slurmsim.Job, repairs []time.Duration,
	cpu workload.CPURecord, cfg PipelineConfig) (*Results, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sp2 := cfg.Obs.StartSpan("stage2.coalesce")
	var meter parallel.WorkerMeter
	if cfg.Obs.Enabled() {
		sp2.SetWorkers(parallel.Resolve(cfg.Workers))
		meter = sp2.ObserveWorker
	}
	coalesced, err := coalesce.EventsParallelMeter(events, cfg.CoalesceWindow, cfg.Workers, meter)
	if err != nil {
		return nil, err
	}
	sp2.AddIn(int64(len(events)))
	sp2.AddOut(int64(len(coalesced)))
	sp2.End()
	res := &Results{
		RawEvents:       len(events),
		CoalescedEvents: len(coalesced),
	}

	// Stage III fan-out: the three analyses below only read coalesced/jobs,
	// so they run concurrently (bounded by cfg.Workers); each one also
	// shards internally where it pays off. Each task carries its own span —
	// started inside the task so a span's wall time excludes queueing.
	tasks := []struct {
		name string
		fn   func(sp *obs.Span) error
	}{
		{"stage3.stats", func(sp *obs.Span) error {
			sp.AddIn(int64(len(coalesced)))
			if err := res.fillTableI(coalesced, cfg); err != nil {
				return err
			}
			sp.AddOut(int64(len(res.TableI)))
			return nil
		}},
		{"stage3.impact", func(sp *obs.Span) error {
			sp.AddIn(int64(len(jobs)))
			cor, err := impact.Correlate(jobs, coalesced, impact.Config{
				AttributionWindow: cfg.AttributionWindow,
				Period:            cfg.Op,
				Workers:           cfg.Workers,
			})
			if err != nil {
				return err
			}
			res.TableII = cor
			sp.AddOut(int64(len(cor.Rows)))
			return nil
		}},
		{"stage3.workload", func(sp *obs.Span) error {
			sp.AddIn(int64(len(jobs)))
			res.TableIII = impact.TableIII(jobs)
			res.JobStats = impact.ComputeJobStats(jobs, cpu.Total, cpu.Succeeded)
			sp.AddOut(int64(len(res.TableIII)))
			return nil
		}},
	}
	if err := parallel.ForEach(len(tasks), cfg.Workers, func(i int) error {
		sp := cfg.Obs.StartSpan(tasks[i].name)
		defer sp.End()
		return tasks[i].fn(sp)
	}); err != nil {
		return nil, err
	}

	spA := cfg.Obs.StartSpan("stage3.availability")
	full := stats.Period{Name: "characterization", Start: cfg.PreOp.Start, End: cfg.Op.End}
	errorCount := res.PreSummary.TotalExclOutliers + res.OpSummary.TotalExclOutliers
	availRes, err := avail.Analyze(repairs, avail.DefaultConfig(full, cfg.Nodes, errorCount))
	if err != nil {
		return nil, err
	}
	res.Avail = availRes
	spA.AddIn(int64(len(repairs)))
	spA.AddOut(int64(availRes.Repairs))
	spA.End()
	return res, nil
}

// fillTableI computes per-group counts and MTBEs for both periods.
func (r *Results) fillTableI(events []xid.Event, cfg PipelineConfig) error {
	type periodCounts struct {
		byGroup  map[xid.Group]int
		byStream map[xid.Key]int
		total    int
		outliers int
		memory   int
		hardware int // hardware + interconnect, as in finding (ii)
	}
	count := func(p stats.Period) periodCounts {
		pc := periodCounts{
			byGroup:  make(map[xid.Group]int),
			byStream: make(map[xid.Key]int),
		}
		for _, ev := range events {
			if !p.Contains(ev.Time) || !ev.Code.InStats() {
				continue
			}
			g, ok := xid.GroupOf(ev.Code)
			if !ok {
				continue
			}
			pc.byGroup[g]++
			pc.byStream[ev.Key()]++
		}
		// Derived row: uncorrectable ECC = remap attempts (RRE + RRF).
		pc.byGroup[xid.GroupUncorrECC] = pc.byGroup[xid.GroupRRE] + pc.byGroup[xid.GroupRRF]
		for g, n := range pc.byGroup {
			pc.total += n
			switch xid.GroupCategory(g) {
			case xid.CategoryMemory:
				pc.memory += n
			default:
				pc.hardware += n
			}
		}
		if cfg.OutlierStreamFraction > 0 {
			floor := cfg.OutlierMinCount
			if floor < 1 {
				floor = 1
			}
			for _, n := range pc.byStream {
				if n >= floor && float64(n) > cfg.OutlierStreamFraction*float64(pc.total) {
					pc.outliers += n
				}
			}
		}
		return pc
	}

	pre := count(cfg.PreOp)
	op := count(cfg.Op)

	cell := func(n int, p stats.Period) (Cell, error) {
		c := Cell{Count: n}
		if n == 0 {
			return c, nil
		}
		m, err := stats.ComputeMTBE(n, p, cfg.Nodes)
		if err != nil {
			return Cell{}, err
		}
		c.MTBE = m
		return c, nil
	}

	for _, g := range xid.TableIGroups() {
		preCell, err := cell(pre.byGroup[g], cfg.PreOp)
		if err != nil {
			return err
		}
		opCell, err := cell(op.byGroup[g], cfg.Op)
		if err != nil {
			return err
		}
		r.TableI = append(r.TableI, TableIRow{
			Group:    g,
			Category: xid.GroupCategory(g),
			PreOp:    preCell,
			Op:       opCell,
		})
	}

	summarize := func(pc periodCounts, p stats.Period) (PeriodSummary, error) {
		s := PeriodSummary{
			Period:            p,
			Total:             pc.total,
			TotalExclOutliers: pc.total - pc.outliers,
			OutlierErrors:     pc.outliers,
		}
		if s.TotalExclOutliers > 0 {
			m, err := stats.ComputeMTBE(s.TotalExclOutliers, p, cfg.Nodes)
			if err != nil {
				return s, err
			}
			s.PerNodeMTBE = m.PerNode
		}
		// The category split mirrors the paper: memory counts include the
		// derived uncorrectable ECC row; outlier streams are memory bursts
		// and are excluded from the memory figure too.
		mem := pc.memory - pc.outliers
		if mem > 0 {
			m, err := stats.ComputeMTBE(mem, p, cfg.Nodes)
			if err != nil {
				return s, err
			}
			s.MemoryPerNodeMTBE = m.PerNode
		}
		if pc.hardware > 0 {
			m, err := stats.ComputeMTBE(pc.hardware, p, cfg.Nodes)
			if err != nil {
				return s, err
			}
			s.HardwarePerNodeMTBE = m.PerNode
		}
		return s, nil
	}
	var err error
	if r.PreSummary, err = summarize(pre, cfg.PreOp); err != nil {
		return err
	}
	r.OpSummary, err = summarize(op, cfg.Op)
	return err
}

// Row returns the Table I row for a group.
func (r *Results) Row(g xid.Group) (TableIRow, bool) {
	for _, row := range r.TableI {
		if row.Group == g {
			return row, true
		}
	}
	return TableIRow{}, false
}

// ExtractEvents runs Stage I over a raw log stream sequentially.
func ExtractEvents(r io.Reader) ([]xid.Event, syslog.ExtractStats, error) {
	return ExtractEventsParallel(r, 1)
}

// ExtractEventsParallel runs Stage I over a raw log stream with the sharded
// extractor. The ordered fan-in keeps the event slice (and stats) identical
// to the sequential scan at any worker count.
func ExtractEventsParallel(r io.Reader, workers int) ([]xid.Event, syslog.ExtractStats, error) {
	var events []xid.Event
	st, err := syslog.ExtractParallel(r, workers, func(ev xid.Event) error {
		events = append(events, ev)
		return nil
	})
	return events, st, err
}

// ExtractEventsLenient runs the corruption-tolerant Stage I: damaged lines
// are classified and skipped under the configured error budgets, and the
// structured ingestion report comes back alongside the recovered events.
// The report is non-nil even when extraction fails.
func ExtractEventsLenient(r io.Reader, workers int, opt syslog.LenientOptions) ([]xid.Event, *syslog.IngestionReport, error) {
	var events []xid.Event
	rep, err := syslog.ExtractLenientParallel(r, workers, opt, func(ev xid.Event) error {
		events = append(events, ev)
		return nil
	})
	return events, rep, err
}

// runStage1 is the pipeline's instrumented Stage I entry point: it runs the
// strict or lenient extractor per cfg, and when cfg.Obs is enabled it
// records the stage span — wall time, lines in, events out, bytes read, and
// per-worker utilization of the sharded extractor's pool. The span is named
// stage1.extract for strict runs and stage1.lenient for corruption-tolerant
// ones, so a run's mode is visible in its metrics.
func runStage1(r io.Reader, cfg PipelineConfig) ([]xid.Event, syslog.ExtractStats, *syslog.IngestionReport, error) {
	var (
		sp    *obs.Span
		meter parallel.WorkerMeter
		alloc *intern.Stats
	)
	if cfg.Obs.Enabled() {
		name := "stage1.extract"
		if cfg.Lenient {
			name = "stage1.lenient"
		}
		sp = cfg.Obs.StartSpan(name)
		sp.SetWorkers(parallel.Resolve(cfg.Workers))
		meter = sp.ObserveWorker
		cr := obs.NewCountingReader(r)
		r = cr
		alloc = new(intern.Stats)
		defer func() {
			sp.AddBytes(cr.N())
			sp.End()
			// Stage I allocation behavior: interner traffic and the bytes
			// actually copied out of the scan buffers (cache misses).
			cfg.Obs.Counter("intern.hits").Add(alloc.Hits)
			cfg.Obs.Counter("intern.misses").Add(alloc.Misses)
			cfg.Obs.Counter("stage1.alloc_bytes").Add(alloc.Bytes)
		}()
	}
	var events []xid.Event
	collect := func(ev xid.Event) error {
		events = append(events, ev)
		return nil
	}
	var (
		st  syslog.ExtractStats
		rep *syslog.IngestionReport
		err error
	)
	if cfg.Lenient {
		rep, err = syslog.ExtractLenientParallelAlloc(r, cfg.Workers, cfg.lenientOptions(), meter, alloc, collect)
		st = ingestStats(rep)
	} else {
		st, err = syslog.ExtractParallelAlloc(r, cfg.Workers, meter, alloc, collect)
	}
	sp.AddIn(int64(st.Lines))
	sp.AddOut(int64(len(events)))
	return events, st, rep, err
}

// IngestConfig selects the multi-file front end's cache behavior.
type IngestConfig struct {
	// CacheDir enables the columnar event-shard cache rooted there; ""
	// disables caching.
	CacheDir string
}

// AnalyzeLogFiles runs the full pipeline over one or more raw log files:
// the patterns expand to a deterministic shard plan (globs, directories,
// repeated -logs flags), every shard runs Stage I concurrently on the
// pooled byte parsers — or loads from the event-shard cache and skips the
// parse — and the merged stream feeds Stages II-III. Tables I-III and the
// availability analysis are byte-identical to a single AnalyzeLogs run
// over the files' concatenation in plan order, at any worker count, warm
// or cold. Results.Shards carries each file's digest and cache outcome.
func AnalyzeLogFiles(patterns []string, jobDB io.Reader, repairs []time.Duration,
	cpu workload.CPURecord, cfg PipelineConfig, ing IngestConfig) (*Results, error) {
	plan, err := ingest.PlanFiles(patterns)
	if err != nil {
		return nil, err
	}
	opt := ingest.Options{
		Workers:        cfg.Workers,
		Lenient:        cfg.Lenient,
		LenientOptions: cfg.lenientOptions(),
		Obs:            cfg.Obs,
	}
	if ing.CacheDir != "" {
		opt.Cache = ingest.NewCache(ing.CacheDir)
	}
	var (
		ext  *ingest.Result
		jobs []*slurmsim.Job
	)
	loaders := []func() error{
		func() error {
			var err error
			ext, err = ingest.Extract(plan, opt)
			if err != nil {
				return fmt.Errorf("core: stage I: %w", err)
			}
			return nil
		},
		func() error {
			if jobDB == nil {
				return nil
			}
			var err error
			jobs, err = slurmsim.LoadDB(jobDB)
			if err != nil {
				return fmt.Errorf("core: load job DB: %w", err)
			}
			return nil
		},
	}
	if err := parallel.ForEach(len(loaders), cfg.Workers, func(i int) error { return loaders[i]() }); err != nil {
		return nil, err
	}
	res, err := Analyze(ext.Events, jobs, repairs, cpu, cfg)
	if err != nil {
		return nil, err
	}
	res.Extract = ext.Stats
	res.Ingestion = ext.Ingestion
	res.Shards = ext.Shards
	return res, nil
}

// AnalyzeLogs runs the full pipeline from raw inputs: a syslog stream and a
// sacct-style job database dump. The two inputs are independent streams, so
// they load concurrently when cfg.Workers allows.
func AnalyzeLogs(logs io.Reader, jobDB io.Reader, repairs []time.Duration,
	cpu workload.CPURecord, cfg PipelineConfig) (*Results, error) {
	var (
		events []xid.Event
		st     syslog.ExtractStats
		ingest *syslog.IngestionReport
		jobs   []*slurmsim.Job
	)
	loaders := []func() error{
		func() error {
			var err error
			events, st, ingest, err = runStage1(logs, cfg)
			if err != nil {
				return fmt.Errorf("core: stage I: %w", err)
			}
			return nil
		},
		func() error {
			if jobDB == nil {
				return nil
			}
			var err error
			jobs, err = slurmsim.LoadDB(jobDB)
			if err != nil {
				return fmt.Errorf("core: load job DB: %w", err)
			}
			return nil
		},
	}
	if err := parallel.ForEach(len(loaders), cfg.Workers, func(i int) error { return loaders[i]() }); err != nil {
		return nil, err
	}
	res, err := Analyze(events, jobs, repairs, cpu, cfg)
	if err != nil {
		return nil, err
	}
	res.Extract = st
	res.Ingestion = ingest
	return res, nil
}

// ingestStats projects a lenient ingestion report onto the strict-mode
// stat shape, so downstream summaries read the same either way.
func ingestStats(rep *syslog.IngestionReport) syslog.ExtractStats {
	if rep == nil {
		return syslog.ExtractStats{}
	}
	return syslog.ExtractStats{
		Lines:     rep.Lines,
		XIDLines:  rep.Records,
		Skipped:   rep.Noise,
		Malformed: rep.BadTotal,
	}
}

// EndToEndConfig couples a simulation with pipeline settings.
type EndToEndConfig struct {
	Cluster  cluster.Config // the simulated fleet to generate logs from
	Pipeline PipelineConfig // analysis settings applied to the emitted logs
	// LogWriterConfig controls raw-line emission; zero value uses defaults.
	LogWriter syslog.WriterConfig
	// KeepRawLogs routes the raw log bytes through w when non-nil (e.g. to
	// persist the dataset); otherwise lines stream straight into Stage I.
	KeepRawLogs io.Writer
	// KeepRawEvents retains the Stage I output (pre-coalescing, one event
	// per raw log line) in the result, for coalescing ablations.
	KeepRawEvents bool
}

// EndToEndResult carries the analysis plus simulation ground truth for
// validation.
type EndToEndResult struct {
	Results *Results // the pipeline's analysis of the emitted logs
	// Truth is the simulator's own event stream (pre-duplication), for
	// validating the pipeline against ground truth.
	Truth *cluster.Result
	// RawLogLines is how many raw lines the syslog stage produced.
	RawLogLines int
	// RawEvents is the Stage I output (only when KeepRawEvents was set).
	RawEvents []xid.Event
}

// EndToEnd runs simulate -> emit raw logs -> extract -> coalesce ->
// characterize in a single streaming pass.
func EndToEnd(cfg EndToEndConfig) (*EndToEndResult, error) {
	// One registry observes the whole run: the pipeline's stage spans and
	// the simulator's sim.* series land side by side.
	if cfg.Pipeline.Obs.Enabled() && cfg.Cluster.Obs == nil {
		cfg.Cluster.Obs = cfg.Pipeline.Obs
	}
	sim, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}

	// Stream raw lines from the simulator into Stage I through a pipe: the
	// writer formats (with duplication and noise) as the simulation runs,
	// and the reader side extracts concurrently — sharded across
	// cfg.Pipeline.Workers goroutines with an ordered fan-in, so the event
	// stream is identical to a sequential scan.
	pr, pw := io.Pipe()
	logDst := io.Writer(pw)
	if cfg.KeepRawLogs != nil {
		logDst = io.MultiWriter(pw, cfg.KeepRawLogs)
	}
	wcfg := cfg.LogWriter
	if wcfg.DefaultDupMean == 0 {
		wcfg = syslog.DefaultWriterConfig()
	}
	writer, err := syslog.NewWriter(logDst, wcfg, cfg.Cluster.Seed)
	if err != nil {
		return nil, err
	}
	sim.SetEventSink(func(ev xid.Event) error {
		_, werr := writer.WriteEvent(ev)
		return werr
	})

	type extractOut struct {
		events []xid.Event
		stats  syslog.ExtractStats
		ingest *syslog.IngestionReport
		err    error
	}
	done := make(chan extractOut, 1)
	go func() {
		var out extractOut
		out.events, out.stats, out.ingest, out.err = runStage1(pr, cfg.Pipeline)
		if out.err != nil {
			// Unblock the writer side: an early abort (e.g. an exceeded
			// error budget) must not deadlock the simulation's pipe writes.
			_ = pr.CloseWithError(out.err)
		}
		done <- out
	}()

	truth, runErr := sim.Run()
	if runErr != nil {
		_ = pw.CloseWithError(runErr)
		<-done
		return nil, runErr
	}
	if err := writer.Flush(); err != nil {
		_ = pw.CloseWithError(err)
		<-done
		return nil, err
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	ext := <-done
	if ext.err != nil {
		return nil, fmt.Errorf("core: stage I: %w", ext.err)
	}

	repairs := make([]time.Duration, 0, len(truth.Downtimes))
	for _, d := range truth.Downtimes {
		repairs = append(repairs, d.Duration())
	}
	res, err := Analyze(ext.events, truth.Jobs, repairs, truth.CPU, cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	res.Extract = ext.stats
	res.Ingestion = ext.ingest
	cfg.Pipeline.Obs.Gauge("sim.rawlines").Set(int64(writer.Lines()))
	out := &EndToEndResult{
		Results:     res,
		Truth:       truth,
		RawLogLines: writer.Lines(),
	}
	if cfg.KeepRawEvents {
		out.RawEvents = ext.events
	}
	return out, nil
}
