package core_test

import (
	"math"
	"testing"
	"time"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/coalesce"
	"gpuresilience/internal/core"
	"gpuresilience/internal/correlation"
	"gpuresilience/internal/survival"
	"gpuresilience/internal/xid"
)

// TestShapeValidationModerateScale runs the calibrated reproduction at 15%
// scale (~220k jobs, a few seconds) and validates the paper's *derived*
// findings — the ones that must emerge from mechanisms rather than from
// configured quotas. Skipped under -short.
func TestShapeValidationModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale validation skipped in -short mode")
	}
	sc := calib.NewScenario(21, 0.15)
	out, err := core.EndToEnd(core.EndToEndConfig{
		Cluster:  sc.Cluster,
		Pipeline: core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results

	// Finding (i) scale-invariant half: the op/pre-op MTBE ratio. Counts
	// scale linearly with the scenario scale, so the ratio is preserved.
	ratio := res.OpSummary.PerNodeMTBE / res.PreSummary.PerNodeMTBE
	if math.Abs(ratio-154.0/199.0) > 0.12 {
		t.Errorf("op/pre-op MTBE ratio = %.2f, want ~0.77", ratio)
	}

	// Finding (ii): memory vs hardware ~160x, scale-invariant.
	memRatio := res.OpSummary.MemoryPerNodeMTBE / res.OpSummary.HardwarePerNodeMTBE
	if memRatio < 100 || memRatio > 260 {
		t.Errorf("memory/hardware ratio = %.0f, want ~160", memRatio)
	}

	// Finding (iii): GSP errors kill 100% of encountered jobs.
	if row, ok := res.TableII.Row(xid.GSPRPCTimeout); ok && row.JobsEncountering > 0 {
		if row.FailureProb < 0.999 {
			t.Errorf("GSP failure probability = %.3f, want 1.0", row.FailureProb)
		}
	}

	// Finding (iv) mechanism: some NVLink-encountering jobs survive, and
	// the PMU->MMU lag correlation is strong.
	if row, ok := res.TableII.Row(xid.NVLink); ok && row.JobsEncountering >= 10 {
		if row.FailureProb < 0.3 || row.FailureProb > 0.8 {
			t.Errorf("NVLink failure probability = %.3f, want ~0.54", row.FailureProb)
		}
	}
	events, err := coalesce.Events(out.Truth.Events, coalesce.DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	if frac, err := correlation.LagCorrelation(events, xid.PMUSPIReadFail, xid.MMU, 20*time.Second); err == nil {
		if frac < 0.9 {
			t.Errorf("PMU->MMU lag correlation = %.2f, want ~1.0", frac)
		}
	}

	// MMU masking: failure probability ~0.905 with real survivors.
	if row, ok := res.TableII.Row(xid.MMU); ok {
		if row.JobsEncountering < 50 {
			t.Fatalf("MMU encounters = %d, too few for the probability check", row.JobsEncountering)
		}
		if math.Abs(row.FailureProb-0.905) > 0.08 {
			t.Errorf("MMU failure probability = %.3f, want ~0.905", row.FailureProb)
		}
	} else {
		t.Error("no MMU row")
	}

	// §V-A: success rate ~74.7% (emergent from baseline + timeouts + kills).
	if math.Abs(res.JobStats.GPUSuccessRate-0.7468) > 0.015 {
		t.Errorf("GPU success rate = %.4f, want ~0.7468", res.JobStats.GPUSuccessRate)
	}

	// Stage II: raw lines exceed true errors by the duplication factor; the
	// pipeline recovers the truth within 2%.
	if out.RawLogLines < 2*len(out.Truth.Events) {
		t.Errorf("raw lines %d vs true events %d: duplication missing",
			out.RawLogLines, len(out.Truth.Events))
	}
	truthN := len(out.Truth.Events)
	if diff := res.CoalescedEvents - truthN; diff < -truthN/50 || diff > truthN/50 {
		t.Errorf("recovered %d events vs truth %d", res.CoalescedEvents, truthN)
	}

	// Error-gap clustering: Weibull shape well below 1 (bursty repeats),
	// matching the episode structure of the field data.
	gaps := survival.InterEventHours(events, nil)
	if len(gaps) > 100 {
		if w, err := survival.FitWeibull(gaps); err == nil && w.Shape > 0.8 {
			t.Errorf("inter-error Weibull shape = %.2f, want < 0.8 (clustered)", w.Shape)
		}
	}

	// Availability arithmetic is self-consistent.
	a := res.Avail
	if a.Repairs == 0 || a.MTTRHours <= 0 || a.Availability <= 0.9 || a.Availability >= 1 {
		t.Errorf("availability block inconsistent: %+v", a)
	}
	wantAvail := a.MTTFHours / (a.MTTFHours + a.MTTRHours)
	if math.Abs(a.Availability-wantAvail) > 1e-9 {
		t.Errorf("availability %.6f != MTTF/(MTTF+MTTR) %.6f", a.Availability, wantAvail)
	}
}
