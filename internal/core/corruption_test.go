package core_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/core"
	"gpuresilience/internal/logfuzz"
	"gpuresilience/internal/report"
	"gpuresilience/internal/slurmsim"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/workload"
	"gpuresilience/internal/xid"
)

// eventKey renders an event for multiset comparison. The fuzzer's reorder
// op relocates intact lines, so recovered events match the surviving subset
// as a multiset, not a sequence (Stage II's stable sort restores a canonical
// order before anything downstream reads them).
func eventKey(ev xid.Event) string {
	return fmt.Sprintf("%s|%s|%d|%d|%s", ev.Time.UTC().Format("2006-01-02T15:04:05.000000Z"),
		ev.Node, ev.GPU, ev.Code, ev.Detail)
}

func multiset(events []xid.Event) map[string]int {
	m := make(map[string]int, len(events))
	for _, ev := range events {
		m[eventKey(ev)]++
	}
	return m
}

// TestCorruptionRecoveryInvariant is the headline robustness guarantee:
// for a seeded fuzzer-corrupted raw log, lenient Stage I recovers 100% of
// the records whose bytes the fuzzer did not touch, and Tables I-III over
// the recovered stream are byte-identical to a clean strict run over the
// surviving subset — at Workers ∈ {1, 4, 16}. Skipped under -short only in
// scale, not in substance.
func TestCorruptionRecoveryInvariant(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	sc := calib.NewScenario(7, scale)

	var rawLogs bytes.Buffer
	out, err := core.EndToEnd(core.EndToEndConfig{
		Cluster:     sc.Cluster,
		Pipeline:    core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes),
		KeepRawLogs: &rawLogs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobsDB bytes.Buffer
	if err := slurmsim.DumpDB(&jobsDB, out.Truth.Jobs); err != nil {
		t.Fatal(err)
	}

	corrupted, fuzzRep, err := logfuzz.Corrupt(rawLogs.Bytes(), logfuzz.Config{
		Seed:          1337,
		Rate:          0.03,
		OversizeBytes: 64 << 10, // memory-sane: inserted junk, not overlong
		Parses: func(line []byte) bool {
			_, ok, err := syslog.ParseLine(string(line))
			return ok && err == nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	surviving := logfuzz.Surviving(rawLogs.Bytes(), fuzzRep)
	if len(fuzzRep.Touched) == 0 || len(surviving) == len(rawLogs.Bytes()) {
		t.Fatalf("fuzzer touched nothing (%d lines); test is vacuous", fuzzRep.TotalLines)
	}
	t.Logf("fuzzer: %d lines, %d touched, %d moved, %d inserted",
		fuzzRep.TotalLines, len(fuzzRep.Touched), len(fuzzRep.Moved), fuzzRep.Inserted)

	// Ground truth: strict extraction and rendering over the surviving
	// subset of the clean log.
	cleanEvents, _, err := core.ExtractEvents(bytes.NewReader(surviving))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := multiset(cleanEvents)
	wantTables := renderTables(t, surviving, jobsDB.Bytes(), core.PipelineConfig{})

	var baseRep *syslog.IngestionReport
	for _, workers := range []int{1, 4, 16} {
		events, ingest, err := core.ExtractEventsLenient(
			bytes.NewReader(corrupted), workers, syslog.LenientOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := multiset(events); !reflect.DeepEqual(got, wantEvents) {
			t.Fatalf("workers=%d: recovered %d events, want the %d surviving records exactly",
				workers, len(events), len(cleanEvents))
		}
		if baseRep == nil {
			baseRep = ingest
			if ingest.BadTotal == 0 {
				t.Fatal("corruption produced no bad lines; test is vacuous")
			}
		} else if !reflect.DeepEqual(ingest, baseRep) {
			t.Fatalf("workers=%d: ingestion report diverges:\n%+v\nvs\n%+v", workers, ingest, baseRep)
		}

		lcfg := core.PipelineConfig{Lenient: true, Workers: workers}
		if got := renderTables(t, corrupted, jobsDB.Bytes(), lcfg); got != wantTables {
			t.Errorf("workers=%d: lenient tables diverge from the clean surviving run:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, wantTables)
		}
	}
}

// renderTables runs AnalyzeLogs with the given lenient/worker overrides and
// renders Tables I-III.
func renderTables(t *testing.T, logs, jobsDB []byte, override core.PipelineConfig) string {
	t.Helper()
	cfg := core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes)
	cfg.Lenient = override.Lenient
	cfg.Workers = override.Workers
	res, err := core.AnalyzeLogs(bytes.NewReader(logs), bytes.NewReader(jobsDB),
		nil, workload.CPURecord{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Lenient && res.Ingestion == nil {
		t.Fatal("lenient run did not surface an ingestion report")
	}
	if !cfg.Lenient && res.Ingestion != nil {
		t.Fatal("strict run unexpectedly produced an ingestion report")
	}
	var buf bytes.Buffer
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return report.WriteTableI(b, res) },
		func(b *bytes.Buffer) error { return report.WriteTableII(b, res) },
		func(b *bytes.Buffer) error { return report.WriteTableIII(b, res) },
	} {
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}
