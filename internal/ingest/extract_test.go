package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpuresilience/internal/logfuzz"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

var testBase = time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC)

// orderedLog renders n valid Xid records with non-decreasing timestamps
// (runs of equal timestamps every few lines, so shard-boundary tie-breaks
// are exercised), interleaved with noise and malformed Xid-shaped lines —
// the realistic worst case the merge invariant must survive.
func orderedLog(n int, seed uint64) []byte {
	rng := rand.New(rand.NewSource(int64(seed)))
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		// Every third line shares the previous timestamp.
		ts := testBase.Add(time.Duration(i-i/3) * time.Second)
		ev := xid.Event{
			Time:   ts,
			Node:   fmt.Sprintf("gpub%03d", rng.Intn(5)+1),
			GPU:    rng.Intn(4),
			Code:   []xid.Code{xid.MMU, xid.NVLink, xid.DBE, xid.GSPError}[rng.Intn(4)],
			Detail: fmt.Sprintf("fault at 0x%08x", i),
		}
		buf.WriteString(syslog.FormatLine(ev, 1000+i, "python"))
		buf.WriteByte('\n')
		if rng.Intn(4) == 0 {
			buf.WriteString(syslog.FormatNoise(ts, ev.Node, i))
			buf.WriteByte('\n')
		}
		if rng.Intn(16) == 0 { // malformed Xid-shaped line (counts as Malformed)
			buf.WriteString(strings.Replace(syslog.FormatLine(ev, 1, "x"),
				"PCI:0000", "PCI:dead", 1))
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// messyLog emits a writer-generated log (duplicates, noise) with event
// spacing wide enough that the duplicate trains stay time-ordered.
func messyLog(t *testing.T, events int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := syslog.NewWriter(&buf, syslog.DefaultWriterConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	codes := []xid.Code{xid.MMU, xid.NVLink, xid.DBE, xid.GSPError}
	for i := 0; i < events; i++ {
		ev := xid.Event{
			Time:   testBase.Add(time.Duration(i) * 7 * time.Second),
			Node:   []string{"gpub001", "gpub002", "gpub003"}[i%3],
			GPU:    i % 4,
			Code:   codes[i%len(codes)],
			Detail: "detail",
		}
		if _, err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// splitLines cuts data into k parts at line boundaries chosen by rng. Parts
// may be empty (a cut repeated) and may hold a single line.
func splitLines(data []byte, k int, rng *rand.Rand) [][]byte {
	lines := bytes.SplitAfter(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	cuts := make([]int, k-1)
	for i := range cuts {
		cuts[i] = rng.Intn(len(lines) + 1)
	}
	cuts = append(cuts, 0, len(lines))
	sortInts(cuts)
	parts := make([][]byte, 0, k+1)
	for i := 1; i < len(cuts); i++ {
		parts = append(parts, bytes.Join(lines[cuts[i-1]:cuts[i]], nil))
	}
	return parts
}

// sortInts is a tiny insertion sort so the test file does not pull in
// package sort for one slice.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k] < v[k-1]; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}

// writeShards materializes parts as shard_%03d.log files under a fresh
// directory and returns its plan (directory expansion sorts by name, so
// plan order equals concatenation order).
func writeShards(t *testing.T, parts [][]byte) (string, Plan) {
	t.Helper()
	dir := t.TempDir()
	for i, part := range parts {
		path := filepath.Join(dir, fmt.Sprintf("shard_%03d.log", i))
		if err := os.WriteFile(path, part, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := PlanFiles([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != len(parts) {
		t.Fatalf("planned %d shards from %d parts", len(plan.Shards), len(parts))
	}
	return dir, plan
}

// referenceExtract runs the unsharded Stage I over the whole stream.
func referenceExtract(t *testing.T, data []byte, workers int) ([]xid.Event, syslog.ExtractStats) {
	t.Helper()
	var events []xid.Event
	st, err := syslog.ExtractParallelAlloc(bytes.NewReader(data), workers, nil, nil, func(ev xid.Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return events, st
}

// sameEvents compares two event streams field by field with Time.Equal, so
// a cache round-trip's internal time representation cannot mask or fake a
// mismatch.
func sameEvents(t *testing.T, got, want []xid.Event, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if !g.Time.Equal(w.Time) || g.Node != w.Node || g.GPU != w.GPU ||
			g.Code != w.Code || g.Detail != w.Detail {
			t.Fatalf("%s: event %d: %+v != %+v", ctx, i, g, w)
		}
	}
}

// TestShardedExtractMatchesUnsplit is the core differential property: for
// random line-boundary splits of one time-ordered log — including empty
// and single-line shards — the sharded extraction reproduces the unsplit
// Stage I stream and statistics exactly, at every worker count.
func TestShardedExtractMatchesUnsplit(t *testing.T) {
	data := orderedLog(400, 11)
	wantEvents, wantStats := referenceExtract(t, data, 1)
	if len(wantEvents) == 0 {
		t.Fatal("reference extraction found no events")
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		k := 1 + rng.Intn(7)
		parts := splitLines(data, k, rng)
		_, plan := writeShards(t, parts)
		for _, workers := range []int{1, 4, 16} {
			res, err := Extract(plan, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			ctx := fmt.Sprintf("trial %d k=%d workers=%d", trial, k, workers)
			sameEvents(t, res.Events, wantEvents, ctx)
			if res.Stats != wantStats {
				t.Fatalf("%s: stats %+v, want %+v", ctx, res.Stats, wantStats)
			}
		}
	}
}

// TestShardedExtractSingleAndEmptyShards pins the degenerate split shapes:
// one shard per line, leading/trailing empty shards, and an all-empty
// plan member next to the whole file.
func TestShardedExtractSingleAndEmptyShards(t *testing.T) {
	data := orderedLog(12, 5)
	wantEvents, wantStats := referenceExtract(t, data, 1)

	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	perLine := make([][]byte, 0, len(lines)+2)
	perLine = append(perLine, nil) // leading empty shard
	for _, l := range lines {
		perLine = append(perLine, l)
	}
	perLine = append(perLine, nil) // trailing empty shard
	_, plan := writeShards(t, perLine)
	res, err := Extract(plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, res.Events, wantEvents, "one shard per line")
	if res.Stats != wantStats {
		t.Fatalf("per-line stats %+v, want %+v", res.Stats, wantStats)
	}
}

func TestExtractMessyWriterLog(t *testing.T) {
	data := messyLog(t, 60, 2)
	wantEvents, wantStats := referenceExtract(t, data, 1)
	rng := rand.New(rand.NewSource(9))
	_, plan := writeShards(t, splitLines(data, 4, rng))
	res, err := Extract(plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, res.Events, wantEvents, "writer log")
	if res.Stats != wantStats {
		t.Fatalf("stats %+v, want %+v", res.Stats, wantStats)
	}
}

func TestExtractEmptyPlan(t *testing.T) {
	if _, err := Extract(Plan{}, Options{}); err == nil {
		t.Fatal("want error for empty plan")
	}
}

// spanNames lists the span names in a snapshot.
func spanNames(snap obs.Snapshot) []string {
	var names []string
	for _, sp := range snap.Spans {
		names = append(names, sp.Name)
	}
	return names
}

func hasSpan(snap obs.Snapshot, name string) bool {
	for _, sp := range snap.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestCacheColdThenWarm is the tentpole acceptance check at the Extract
// level: a cold cached run misses and writes every shard, a warm re-run
// hits every shard, produces the identical stream and statistics, and
// never starts a Stage I span — the parse really is skipped, not repeated.
func TestCacheColdThenWarm(t *testing.T) {
	data := orderedLog(120, 3)
	rng := rand.New(rand.NewSource(31))
	_, plan := writeShards(t, splitLines(data, 3, rng))
	cacheDir := t.TempDir()
	k := int64(len(plan.Shards))

	coldReg := obs.New()
	cold, err := Extract(plan, Options{Workers: 4, Cache: NewCache(cacheDir), Obs: coldReg})
	if err != nil {
		t.Fatal(err)
	}
	coldSnap := coldReg.Snapshot()
	if coldSnap.Counters["cache.miss"] != k || coldSnap.Counters["cache.write"] != k {
		t.Fatalf("cold counters: %+v", coldSnap.Counters)
	}
	if !hasSpan(coldSnap, "stage1.extract") || !hasSpan(coldSnap, "stage1.shard.000") {
		t.Fatalf("cold run spans: %v", spanNames(coldSnap))
	}
	if coldSnap.Gauges["ingest.shards"] != k {
		t.Fatalf("cold gauge: %+v", coldSnap.Gauges)
	}
	for _, sh := range cold.Shards {
		if sh.Outcome != CacheMiss {
			t.Fatalf("cold shard outcome: %+v", sh)
		}
	}

	warmReg := obs.New()
	warm, err := Extract(plan, Options{Workers: 4, Cache: NewCache(cacheDir), Obs: warmReg})
	if err != nil {
		t.Fatal(err)
	}
	warmSnap := warmReg.Snapshot()
	if warmSnap.Counters["cache.hit"] != k {
		t.Fatalf("warm counters: %+v", warmSnap.Counters)
	}
	if len(warmSnap.Spans) != 0 {
		t.Fatalf("warm run started spans: %v", spanNames(warmSnap))
	}
	sameEvents(t, warm.Events, cold.Events, "warm vs cold")
	if warm.Stats != cold.Stats {
		t.Fatalf("warm stats %+v, cold %+v", warm.Stats, cold.Stats)
	}
	for i, sh := range warm.Shards {
		if sh.Outcome != CacheHit {
			t.Fatalf("warm shard outcome: %+v", sh)
		}
		if sh.Digest != cold.Shards[i].Digest {
			t.Fatalf("shard %d digest drifted between runs", i)
		}
	}
}

// runCached is a helper running Extract with a cache rooted at dir and
// returning the run's counter snapshot.
func runCached(t *testing.T, plan Plan, cache *Cache) (*Result, map[string]int64) {
	t.Helper()
	reg := obs.New()
	res, err := Extract(plan, Options{Workers: 2, Cache: cache, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return res, reg.Snapshot().Counters
}

// TestCacheInvalidationOnSourceChange: appending one line to a source log
// invalidates exactly that shard, and the re-parse picks up the new line.
func TestCacheInvalidationOnSourceChange(t *testing.T) {
	data := orderedLog(60, 17)
	rng := rand.New(rand.NewSource(41))
	dir, plan := writeShards(t, splitLines(data, 3, rng))
	cacheDir := t.TempDir()

	runCached(t, plan, NewCache(cacheDir)) // populate

	// Append a fresh, later record to the last shard's file.
	extra := syslog.FormatLine(xid.Event{
		Time: testBase.Add(24 * time.Hour), Node: "gpub009", GPU: 1,
		Code: xid.MMU, Detail: "appended"}, 7, "python") + "\n"
	last := filepath.Join(dir, fmt.Sprintf("shard_%03d.log", len(plan.Shards)-1))
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(extra); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	plan, err = PlanFiles([]string{dir}) // re-stat the grown file
	if err != nil {
		t.Fatal(err)
	}

	res, counters := runCached(t, plan, NewCache(cacheDir))
	if counters["cache.invalidated"] != 1 || counters["cache.hit"] != int64(len(plan.Shards)-1) {
		t.Fatalf("after touch: %+v", counters)
	}
	lastEv := res.Events[len(res.Events)-1]
	if lastEv.Detail != "appended" {
		t.Fatalf("re-parse missed the appended record: %+v", lastEv)
	}

	// The overwritten entry serves hits again.
	_, counters = runCached(t, plan, NewCache(cacheDir))
	if counters["cache.hit"] != int64(len(plan.Shards)) {
		t.Fatalf("after re-cache: %+v", counters)
	}
}

// TestCacheInvalidationOnConfigChange: a different parser configuration
// never serves another key's entries.
func TestCacheInvalidationOnConfigChange(t *testing.T) {
	data := orderedLog(40, 19)
	rng := rand.New(rand.NewSource(43))
	_, plan := writeShards(t, splitLines(data, 2, rng))
	cacheDir := t.TempDir()
	k := int64(len(plan.Shards))

	runCached(t, plan, NewCache(cacheDir)) // populate under the default key

	bumped := &Cache{Dir: cacheDir, Key: CacheKey{ParserVersion: ParserVersion + 1, Strict: true}}
	_, counters := runCached(t, plan, bumped)
	if counters["cache.invalidated"] != k || counters["cache.hit"] != 0 {
		t.Fatalf("config change: %+v", counters)
	}
	// The bumped runs overwrote the entries; the old key now invalidates.
	_, counters = runCached(t, plan, NewCache(cacheDir))
	if counters["cache.invalidated"] != k {
		t.Fatalf("old key after overwrite: %+v", counters)
	}
}

// TestCacheInvalidationOnFormatVersionBump: an on-disk entry from a future
// (or past) container version re-parses instead of being trusted.
func TestCacheInvalidationOnFormatVersionBump(t *testing.T) {
	data := orderedLog(30, 23)
	_, plan := writeShards(t, [][]byte{data})
	cacheDir := t.TempDir()

	runCached(t, plan, NewCache(cacheDir))
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.evshard"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries: %v, %v", entries, err)
	}
	// Rewrite the entry with a bumped format version and a re-stamped
	// checksum, as a binary from a newer release would have written it.
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	patchFormatVersion(raw, FormatVersion+1)
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, counters := runCached(t, plan, NewCache(cacheDir))
	if counters["cache.invalidated"] != 1 {
		t.Fatalf("version bump: %+v", counters)
	}

	// And a truncated (corrupt) entry behaves the same way.
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, counters = runCached(t, plan, NewCache(cacheDir))
	if counters["cache.invalidated"] != 1 {
		t.Fatalf("truncated entry: %+v", counters)
	}

	// Deleting the entry is a plain miss.
	if err := os.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	_, counters = runCached(t, plan, NewCache(cacheDir))
	if counters["cache.miss"] != 1 {
		t.Fatalf("deleted entry: %+v", counters)
	}
}

// TestLenientRunsBypassCache: lenient mode neither reads nor writes the
// cache (quarantine state is not persisted) and says so in the counters.
func TestLenientRunsBypassCache(t *testing.T) {
	data := orderedLog(30, 29)
	rng := rand.New(rand.NewSource(47))
	_, plan := writeShards(t, splitLines(data, 2, rng))
	cacheDir := t.TempDir()

	reg := obs.New()
	res, err := Extract(plan, Options{Workers: 2, Lenient: true, Cache: NewCache(cacheDir), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	counters := reg.Snapshot().Counters
	if counters["cache.bypass"] != int64(len(plan.Shards)) || counters["cache.write"] != 0 {
		t.Fatalf("lenient cache counters: %+v", counters)
	}
	for _, sh := range res.Shards {
		if sh.Outcome != CacheBypass {
			t.Fatalf("lenient shard outcome: %+v", sh)
		}
	}
	if entries, _ := filepath.Glob(filepath.Join(cacheDir, "*.evshard")); len(entries) != 0 {
		t.Fatalf("lenient run wrote cache entries: %v", entries)
	}
	if res.Ingestion == nil {
		t.Fatal("lenient run returned no ingestion report")
	}
}

// referenceLenient runs the single-stream lenient extractor.
func referenceLenient(t *testing.T, data []byte, opt syslog.LenientOptions) ([]xid.Event, *syslog.IngestionReport, error) {
	t.Helper()
	var events []xid.Event
	rep, err := syslog.ExtractLenientParallelAlloc(bytes.NewReader(data), 1, opt, nil, nil, func(ev xid.Event) error {
		events = append(events, ev)
		return nil
	})
	return events, rep, err
}

// TestLenientShardedMatchesSingle: a logfuzz-corrupted log split at line
// boundaries recovers the same events and the same merged ingestion report
// (counts, quarantine samples with rebased line numbers, budget status) as
// the single-stream lenient run.
func TestLenientShardedMatchesSingle(t *testing.T) {
	clean := orderedLog(300, 37)
	// Every op except reorder: a reorder relocates intact (still-parseable)
	// lines out of time order, where the single stream and the
	// normalization-then-merge path legitimately disagree — the merge
	// contract covers time-ordered records only.
	ops := []logfuzz.Op{logfuzz.OpTruncate, logfuzz.OpSplit, logfuzz.OpMerge,
		logfuzz.OpBitFlip, logfuzz.OpDupChunk, logfuzz.OpGarbage, logfuzz.OpOversize}
	corrupted, _, err := logfuzz.Corrupt(clean, logfuzz.Config{
		Seed: 99, Rate: 0.04, Ops: ops, OversizeBytes: 16 << 10,
		Parses: func(line []byte) bool {
			_, ok, perr := syslog.ParseLine(string(line))
			return ok && perr == nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lopt := syslog.LenientOptions{MaxLineBytes: 8 << 10}
	wantEvents, wantRep, err := referenceLenient(t, corrupted, lopt)
	if err != nil {
		t.Fatal(err)
	}
	if wantRep.BadTotal == 0 {
		t.Fatal("corruption produced no bad lines; raise the rate")
	}

	rng := rand.New(rand.NewSource(53))
	_, plan := writeShards(t, splitLines(corrupted, 4, rng))
	res, err := Extract(plan, Options{Workers: 4, Lenient: true, LenientOptions: lopt})
	if err != nil {
		t.Fatal(err)
	}
	sameEvents(t, res.Events, wantEvents, "lenient sharded")
	if res.Ingestion == nil {
		t.Fatal("no merged ingestion report")
	}
	if !reflect.DeepEqual(res.Ingestion, wantRep) {
		t.Fatalf("merged report diverges:\n got: %+v\nwant: %+v", res.Ingestion, wantRep)
	}
}

// TestLenientMergedBudgets: error budgets are enforced over the merged
// totals — a fraction harmless per shard but fatal overall fails, and the
// absolute budget fails even when no single shard exceeds it.
func TestLenientMergedBudgets(t *testing.T) {
	// A fully clean log (records only), so the bad-line arithmetic below is
	// exact: every corrupt line is one of the injected garbage lines.
	var goodBuf bytes.Buffer
	for i := 0; i < 100; i++ {
		goodBuf.WriteString(syslog.FormatLine(xid.Event{
			Time: testBase.Add(time.Duration(i) * time.Second), Node: "gpub001",
			GPU: 0, Code: xid.MMU, Detail: "d"}, 1000+i, "python"))
		goodBuf.WriteByte('\n')
	}
	good := goodBuf.Bytes()
	var bad bytes.Buffer
	for i := 0; i < 4; i++ {
		bad.WriteString("binary \xff\xfe\xfd garbage\n")
	}

	t.Run("absolute budget over merged totals", func(t *testing.T) {
		// Two shards with 2 bad lines each: neither exceeds MaxBadLines=3
		// alone, the merged total of 4 does.
		half := bad.Bytes()[:len(bad.Bytes())/2]
		shard := append(append([]byte{}, good...), half...)
		_, plan := writeShards(t, [][]byte{shard, append([]byte(nil), shard...)})
		res, err := Extract(plan, Options{Workers: 2, Lenient: true,
			LenientOptions: syslog.LenientOptions{MaxBadLines: 3}})
		var be *syslog.BudgetError
		if !errors.As(err, &be) || be.Kind != syslog.BudgetLines {
			t.Fatalf("err = %v, want BudgetLines", err)
		}
		if res == nil || res.Ingestion == nil || !res.Ingestion.Budget.Exceeded {
			t.Fatalf("budget-exceeded report missing: %+v", res)
		}
	})

	t.Run("fraction evaluated globally not per shard", func(t *testing.T) {
		// Shard 2 is 100% bad on its own; diluted by shard 1 the merged
		// fraction is far below the budget, so the run must succeed.
		_, plan := writeShards(t, [][]byte{good, bad.Bytes()})
		res, err := Extract(plan, Options{Workers: 2, Lenient: true,
			LenientOptions: syslog.LenientOptions{MaxBadFrac: 0.5}})
		if err != nil {
			t.Fatalf("diluted fraction failed: %v", err)
		}
		if res.Ingestion.BadTotal != 4 {
			t.Fatalf("bad total: %+v", res.Ingestion)
		}

		// With a budget below the merged fraction it fails as
		// BudgetFraction.
		_, err = Extract(plan, Options{Workers: 2, Lenient: true,
			LenientOptions: syslog.LenientOptions{MaxBadFrac: 0.0001}})
		var be *syslog.BudgetError
		if !errors.As(err, &be) || be.Kind != syslog.BudgetFraction {
			t.Fatalf("err = %v, want BudgetFraction", err)
		}
	})
}
