// Differential battery at the pipeline level: the sharded multi-file front
// end must render Tables I-III and the availability section byte-identical
// to the single-stream pipeline, at any worker count, cold or cache-warm.
// The tests live in an external package because they drive internal/core,
// which itself imports internal/ingest.
package ingest_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/core"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/report"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/workload"
	"gpuresilience/internal/xid"
)

// operationalLog renders a time-ordered log inside the calibrated
// operational period so Tables I-III have non-trivial rows.
func operationalLog(t *testing.T, n int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := syslog.NewWriter(&buf, syslog.DefaultWriterConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	base := calib.Op().Start.Add(24 * time.Hour)
	codes := []xid.Code{xid.MMU, xid.NVLink, xid.DBE, xid.GSPError, xid.FallenOffBus}
	for i := 0; i < n; i++ {
		ev := xid.Event{
			Time:   base.Add(time.Duration(i) * 11 * time.Second),
			Node:   fmt.Sprintf("gpub%03d", rng.Intn(8)+1),
			GPU:    rng.Intn(4),
			Code:   codes[rng.Intn(len(codes))],
			Detail: "d",
		}
		if _, err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// splitIntoFiles writes data as k files split at line boundaries under a
// fresh directory, named so that directory order equals stream order.
func splitIntoFiles(t *testing.T, data []byte, k int, rng *rand.Rand) string {
	t.Helper()
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	dir := t.TempDir()
	cuts := []int{0, len(lines)}
	for i := 0; i < k-1; i++ {
		cuts = append(cuts, rng.Intn(len(lines)+1))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
	}
	for i := 1; i < len(cuts); i++ {
		part := bytes.Join(lines[cuts[i-1]:cuts[i]], nil)
		name := filepath.Join(dir, fmt.Sprintf("part_%03d.log", i-1))
		if err := os.WriteFile(name, part, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// renderAll renders the full report (Tables I-III + availability) to bytes.
func renderAll(t *testing.T, res *core.Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteAll(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteFindings(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedTablesByteIdenticalToSingleStream is the tentpole acceptance
// criterion: sharded multi-file ingestion of a split log renders Tables
// I-III and availability byte-identical to the single-file run at workers
// 1, 4, and 16.
func TestShardedTablesByteIdenticalToSingleStream(t *testing.T) {
	data := operationalLog(t, 300, 77)
	rng := rand.New(rand.NewSource(101))
	dir := splitIntoFiles(t, data, 5, rng)

	for _, workers := range []int{1, 4, 16} {
		cfg := core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes)
		cfg.Workers = workers
		single, err := core.AnalyzeLogs(bytes.NewReader(data), nil, nil, workload.CPURecord{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := core.AnalyzeLogFiles([]string{dir}, nil, nil, workload.CPURecord{}, cfg, core.IngestConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want, got := renderAll(t, single), renderAll(t, sharded)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sharded report diverges from single-stream\n--- sharded ---\n%s\n--- single ---\n%s",
				workers, got, want)
		}
		if sharded.Extract != single.Extract {
			t.Fatalf("workers=%d: extract stats %+v != %+v", workers, sharded.Extract, single.Extract)
		}
		if len(sharded.Shards) != 5 {
			t.Fatalf("workers=%d: shard records: %+v", workers, sharded.Shards)
		}
	}
}

// TestCacheWarmPipelineByteIdentical: a cache-warm AnalyzeLogFiles run
// renders the identical report while skipping Stage I entirely — no
// stage1.extract span, every shard a cache hit.
func TestCacheWarmPipelineByteIdentical(t *testing.T) {
	data := operationalLog(t, 200, 79)
	rng := rand.New(rand.NewSource(103))
	dir := splitIntoFiles(t, data, 3, rng)
	cacheDir := t.TempDir()

	run := func() (*core.Results, obs.Snapshot) {
		reg := obs.New()
		cfg := core.DefaultPipelineConfig(calib.PreOp(), calib.Op(), calib.Nodes)
		cfg.Workers = 4
		cfg.Obs = reg
		res, err := core.AnalyzeLogFiles([]string{dir}, nil, nil, workload.CPURecord{},
			cfg, core.IngestConfig{CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Snapshot()
	}

	cold, coldSnap := run()
	warm, warmSnap := run()

	if coldSnap.Counters["cache.miss"] != 3 || coldSnap.Counters["cache.write"] != 3 {
		t.Fatalf("cold counters: %+v", coldSnap.Counters)
	}
	hasExtract := func(s obs.Snapshot) bool {
		for _, sp := range s.Spans {
			if sp.Name == "stage1.extract" {
				return true
			}
		}
		return false
	}
	if !hasExtract(coldSnap) {
		t.Fatal("cold run did not record stage1.extract")
	}
	if hasExtract(warmSnap) {
		t.Fatal("warm run re-ran Stage I")
	}
	if warmSnap.Counters["cache.hit"] != 3 {
		t.Fatalf("warm counters: %+v", warmSnap.Counters)
	}
	want, got := renderAll(t, cold), renderAll(t, warm)
	if !bytes.Equal(got, want) {
		t.Fatalf("warm report diverges from cold:\n--- warm ---\n%s\n--- cold ---\n%s", got, want)
	}
}
