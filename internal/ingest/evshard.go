package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// FormatVersion is the .evshard container version. Bump it whenever the
// encoding changes shape; every cached shard written under a different
// version is invalidated on load.
const FormatVersion = 1

// ParserVersion names the Stage I parser generation a cached shard was
// produced by. Bump it whenever parse semantics change (what counts as an
// Xid record, how fields are extracted), so stale caches can never serve
// events a fresh parse would not produce.
const ParserVersion = 1

// evshardMagic opens every cache file. The trailing byte is \n so that a
// truncation-by-text-tool (CRLF rewrite, head -c) breaks the magic too.
var evshardMagic = [8]byte{'E', 'V', 'S', 'H', 'A', 'R', 'D', '\n'}

// digestLen is the size of the SHA-256 digests embedded in the header and
// of the whole-payload checksum trailer.
const digestLen = sha256.Size

// FormatError is the typed decode failure for corrupt, truncated, or
// incompatible .evshard data. The cache layer treats any FormatError as an
// invalidation — re-parse, overwrite — never as a fatal run error.
type FormatError struct {
	// Reason says what check failed, e.g. "truncated header" or
	// "checksum mismatch".
	Reason string
}

// Error implements error.
func (e *FormatError) Error() string { return "evshard: " + e.Reason }

// formatErrf builds a FormatError.
func formatErrf(format string, args ...any) error {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// Payload is one shard's cached Stage I output: the parsed events in line
// order plus the scan statistics, bound to the exact source bytes and
// parser configuration that produced them.
type Payload struct {
	// SourceDigest is the SHA-256 of the raw log file's content.
	SourceDigest [digestLen]byte
	// ConfigDigest identifies the parser configuration (see Cache).
	ConfigDigest [digestLen]byte
	// SourcePath is the log file the shard was parsed from, recorded for
	// debuggability only; it is not part of the validity check.
	SourcePath string
	// Stats is the shard's Stage I scan statistics.
	Stats syslog.ExtractStats
	// Events is the shard's parsed event stream in source line order.
	Events []xid.Event
}

// stringTable interns the distinct strings of one column in first-seen
// order, so the column encodes as small indices into a shared table.
type stringTable struct {
	idx  map[string]uint64
	vals []string
}

// intern returns the table index for s, adding it on first sight.
func (t *stringTable) intern(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	if t.idx == nil {
		t.idx = make(map[string]uint64)
	}
	i := uint64(len(t.vals))
	t.idx[s] = i
	t.vals = append(t.vals, s)
	return i
}

// putUvarint appends v to b as an unsigned varint.
func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putVarint appends v to b as a zigzag-encoded signed varint.
func putVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putString appends a length-prefixed string.
func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// EncodeShard renders p as a self-verifying .evshard byte image:
//
//	magic[8] version[u32le] sourceDigest[32] configDigest[32]
//	sourcePath stats{lines,xid,skipped,malformed}
//	eventCount nodeTable detailTable
//	times(zigzag delta) nodeIdx gpus(zigzag) codes(zigzag) detailIdx
//	sha256(all preceding bytes)[32]
//
// Every multi-byte integer is a varint except the fixed-width header and
// trailer; event columns are column-major (all times, then all node
// indices, ...) so same-typed values compress and decode cache-friendly.
func EncodeShard(p *Payload) []byte {
	// Size guess: header+trailer plus ~8 bytes per event across columns.
	buf := make([]byte, 0, 128+len(p.SourcePath)+8*len(p.Events))
	buf = append(buf, evshardMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = append(buf, p.SourceDigest[:]...)
	buf = append(buf, p.ConfigDigest[:]...)
	buf = putString(buf, p.SourcePath)
	buf = putVarint(buf, int64(p.Stats.Lines))
	buf = putVarint(buf, int64(p.Stats.XIDLines))
	buf = putVarint(buf, int64(p.Stats.Skipped))
	buf = putVarint(buf, int64(p.Stats.Malformed))
	buf = putUvarint(buf, uint64(len(p.Events)))

	var nodes, details stringTable
	for _, ev := range p.Events {
		nodes.intern(ev.Node)
		details.intern(ev.Detail)
	}
	for _, t := range [2]stringTable{nodes, details} {
		buf = putUvarint(buf, uint64(len(t.vals)))
		for _, s := range t.vals {
			buf = putString(buf, s)
		}
	}
	prev := int64(0)
	for i, ev := range p.Events {
		ns := ev.Time.UnixNano()
		if i == 0 {
			buf = putVarint(buf, ns)
		} else {
			buf = putVarint(buf, ns-prev)
		}
		prev = ns
	}
	for _, ev := range p.Events {
		buf = putUvarint(buf, nodes.intern(ev.Node))
	}
	for _, ev := range p.Events {
		buf = putVarint(buf, int64(ev.GPU))
	}
	for _, ev := range p.Events {
		buf = putVarint(buf, int64(ev.Code))
	}
	for _, ev := range p.Events {
		buf = putUvarint(buf, details.intern(ev.Detail))
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decoder is a bounds-checked cursor over the varint section of a shard.
type decoder struct {
	b []byte
}

// uvarint reads one unsigned varint, failing on truncation or overflow.
func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, formatErrf("truncated or overlong %s varint", what)
	}
	d.b = d.b[n:]
	return v, nil
}

// varint reads one zigzag-encoded signed varint.
func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, formatErrf("truncated or overlong %s varint", what)
	}
	d.b = d.b[n:]
	return v, nil
}

// intField reads a signed varint that must fit in an int.
func (d *decoder) intField(what string) (int, error) {
	v, err := d.varint(what)
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, formatErrf("%s %d overflows int", what, v)
	}
	return int(v), nil
}

// str reads one length-prefixed string.
func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", formatErrf("%s length %d exceeds remaining %d bytes", what, n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// table reads one interned string table.
func (d *decoder) table(what string) ([]string, error) {
	n, err := d.uvarint(what + " table size")
	if err != nil {
		return nil, err
	}
	// Each entry costs at least one length byte, so n can never exceed
	// the remaining payload; the check caps hostile preallocations.
	if n > uint64(len(d.b)) {
		return nil, formatErrf("%s table size %d exceeds remaining %d bytes", what, n, len(d.b))
	}
	vals := make([]string, n)
	for i := range vals {
		if vals[i], err = d.str(what); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// DecodeShard parses a .evshard byte image, verifying the magic, format
// version, and whole-payload checksum before touching the columns. Any
// truncation, bit flip, or malformed field returns a *FormatError; decode
// never panics on arbitrary input (FuzzEvshardDecode holds it to that).
func DecodeShard(data []byte) (*Payload, error) {
	const headerLen = len(evshardMagic) + 4 + 2*digestLen
	if len(data) < headerLen+digestLen {
		return nil, formatErrf("truncated: %d bytes is shorter than header+trailer", len(data))
	}
	if !bytes.Equal(data[:len(evshardMagic)], evshardMagic[:]) {
		return nil, formatErrf("bad magic %q", data[:len(evshardMagic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(evshardMagic):]); v != FormatVersion {
		return nil, formatErrf("format version %d, want %d", v, FormatVersion)
	}
	body, trailer := data[:len(data)-digestLen], data[len(data)-digestLen:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, formatErrf("checksum mismatch")
	}

	p := &Payload{}
	off := len(evshardMagic) + 4
	copy(p.SourceDigest[:], data[off:])
	copy(p.ConfigDigest[:], data[off+digestLen:])
	d := &decoder{b: body[headerLen:]}
	var err error
	if p.SourcePath, err = d.str("source path"); err != nil {
		return nil, err
	}
	if p.Stats.Lines, err = d.intField("stats.lines"); err != nil {
		return nil, err
	}
	if p.Stats.XIDLines, err = d.intField("stats.xidlines"); err != nil {
		return nil, err
	}
	if p.Stats.Skipped, err = d.intField("stats.skipped"); err != nil {
		return nil, err
	}
	if p.Stats.Malformed, err = d.intField("stats.malformed"); err != nil {
		return nil, err
	}
	count, err := d.uvarint("event count")
	if err != nil {
		return nil, err
	}
	// Every event costs at least 5 column bytes (one varint per column),
	// so a count beyond remaining/5 is corrupt — and the bound keeps a
	// forged count from preallocating unbounded memory.
	if count > uint64(len(d.b)) {
		return nil, formatErrf("event count %d exceeds remaining %d bytes", count, len(d.b))
	}
	nodes, err := d.table("node")
	if err != nil {
		return nil, err
	}
	details, err := d.table("detail")
	if err != nil {
		return nil, err
	}
	events := make([]xid.Event, count)
	prev := int64(0)
	for i := range events {
		dt, err := d.varint("time")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = dt
		} else {
			prev += dt
		}
		events[i].Time = time.Unix(0, prev).UTC()
	}
	for i := range events {
		idx, err := d.uvarint("node index")
		if err != nil {
			return nil, err
		}
		if idx >= uint64(len(nodes)) {
			return nil, formatErrf("node index %d out of range (table has %d)", idx, len(nodes))
		}
		events[i].Node = nodes[idx]
	}
	for i := range events {
		if events[i].GPU, err = d.intField("gpu"); err != nil {
			return nil, err
		}
	}
	for i := range events {
		c, err := d.intField("code")
		if err != nil {
			return nil, err
		}
		events[i].Code = xid.Code(c)
	}
	for i := range events {
		idx, err := d.uvarint("detail index")
		if err != nil {
			return nil, err
		}
		if idx >= uint64(len(details)) {
			return nil, formatErrf("detail index %d out of range (table has %d)", idx, len(details))
		}
		events[i].Detail = details[idx]
	}
	if len(d.b) != 0 {
		return nil, formatErrf("%d trailing bytes after columns", len(d.b))
	}
	p.Events = events
	return p, nil
}
