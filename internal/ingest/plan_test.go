package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// touch creates an empty regular file.
func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestExpandDirectorySortedByName(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"c.log", "a.log", "b.log"} {
		touch(t, filepath.Join(dir, name))
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	paths, err := Expand([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "a.log"),
		filepath.Join(dir, "b.log"),
		filepath.Join(dir, "c.log"),
	}
	if len(paths) != len(want) {
		t.Fatalf("got %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("got %v, want %v", paths, want)
		}
	}
}

func TestExpandGlobSorted(t *testing.T) {
	dir := t.TempDir()
	touch(t, filepath.Join(dir, "day2.log"))
	touch(t, filepath.Join(dir, "day1.log"))
	touch(t, filepath.Join(dir, "other.txt"))
	paths, err := Expand([]string{filepath.Join(dir, "day*.log")})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || !strings.HasSuffix(paths[0], "day1.log") || !strings.HasSuffix(paths[1], "day2.log") {
		t.Fatalf("glob expansion: %v", paths)
	}
}

func TestExpandGlobMatchingDirectoryRecurses(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "logs")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	touch(t, filepath.Join(sub, "a.log"))
	paths, err := Expand([]string{filepath.Join(dir, "lo*")})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !strings.HasSuffix(paths[0], "a.log") {
		t.Fatalf("glob-matched directory: %v", paths)
	}
}

func TestExpandErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.Mkdir(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		patterns []string
		want     string
	}{
		{"empty dir", []string{empty}, "no regular files"},
		{"no glob match", []string{filepath.Join(dir, "*.log")}, "matched no files"},
		{"no patterns", nil, "no log files"},
	}
	for _, tc := range cases {
		_, err := Expand(tc.patterns)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandKeepsLiteralNonexistentPath(t *testing.T) {
	// The daemon tails files that may not exist yet; a literal path must
	// survive expansion untouched even when it does not stat.
	paths, err := Expand([]string{"/nonexistent/future.log"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "/nonexistent/future.log" {
		t.Fatalf("literal path: %v", paths)
	}
}

func TestExpandDeduplicatesKeepingFirst(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.log")
	b := filepath.Join(dir, "b.log")
	touch(t, a)
	touch(t, b)
	// b named explicitly first, then again via the directory expansion.
	paths, err := Expand([]string{b, dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != b || paths[1] != a {
		t.Fatalf("dedupe order: %v", paths)
	}
}

func TestPlanFilesOrdinalsAndSizes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.log"), []byte("aa\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.log"), []byte("bbbb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFiles([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 2 {
		t.Fatalf("shards: %+v", plan.Shards)
	}
	if plan.Shards[0].Ordinal != 0 || plan.Shards[1].Ordinal != 1 {
		t.Fatalf("ordinals: %+v", plan.Shards)
	}
	if plan.Shards[0].Bytes != 3 || plan.Shards[1].Bytes != 5 {
		t.Fatalf("sizes: %+v", plan.Shards)
	}
}

func TestPlanFilesRequiresExistingRegularFiles(t *testing.T) {
	if _, err := PlanFiles([]string{"/nonexistent/future.log"}); err == nil {
		t.Fatal("want error for nonexistent literal path")
	}
	if st, err := os.Stat("/dev/null"); err != nil || st.Mode().IsRegular() {
		t.Skip("no /dev/null device to exercise the regular-file check")
	}
	if _, err := PlanFiles([]string{"/dev/null"}); err == nil ||
		!strings.Contains(err.Error(), "not a regular file") {
		t.Fatalf("non-regular planned file: err = %v", err)
	}
}
