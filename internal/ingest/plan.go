// Package ingest is the multi-file Stage I front end: it expands the CLIs'
// -logs arguments (paths, globs, directories) into a deterministic shard
// plan, runs the existing pooled byte parsers concurrently per shard, and
// k-way merges the per-shard event streams by (timestamp, shard ordinal,
// line) so Tables I-III are byte-identical to a single concatenated-file
// run at any worker count. A compact columnar event-shard cache (.evshard
// files) persists each shard's parsed events keyed by the source file's
// SHA-256 and the parser configuration, so re-analysis skips Stage I
// entirely. See docs/ingest.md for the merge invariant and the cache
// format.
package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Shard is one planned unit of Stage I work: a single log file plus its
// position in the deterministic plan order. The ordinal breaks timestamp
// ties in the k-way merge, which is what makes the merged stream agree
// with a concatenation of the planned files in plan order.
type Shard struct {
	// Path is the log file, cleaned but not made absolute (the plan is
	// reproducible from the same working directory).
	Path string
	// Bytes is the file's size at planning time.
	Bytes int64
	// Ordinal is the shard's position in the plan, starting at 0.
	Ordinal int
}

// Plan is a deterministic expansion of log patterns into per-file shards.
type Plan struct {
	// Shards lists the planned files in merge-tie order.
	Shards []Shard
}

// globMeta are the metacharacters that make a pattern a glob rather than a
// literal path (the set filepath.Match interprets).
const globMeta = `*?[`

// Expand resolves each pattern into concrete file paths without requiring
// the files to exist: directories expand to their regular files sorted by
// name, glob patterns expand to their sorted matches (a glob matching
// nothing is an error, a literal path is kept as-is), and duplicates keep
// their first position. The expansion is deterministic: it depends only on
// the patterns and the directory listing, never on map or readdir order.
func Expand(patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		p = filepath.Clean(p)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	addDir := func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("ingest: expand %s: %w", dir, err)
		}
		n := 0
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if e.Type().IsRegular() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			add(filepath.Join(dir, name))
			n++
		}
		if n == 0 {
			return fmt.Errorf("ingest: directory %s contains no regular files", dir)
		}
		return nil
	}
	for _, pat := range patterns {
		if st, err := os.Stat(pat); err == nil && st.IsDir() {
			if err := addDir(pat); err != nil {
				return nil, err
			}
			continue
		}
		if strings.ContainsAny(pat, globMeta) {
			matches, err := filepath.Glob(pat)
			if err != nil {
				return nil, fmt.Errorf("ingest: bad glob %q: %w", pat, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("ingest: glob %q matched no files", pat)
			}
			sort.Strings(matches)
			for _, m := range matches {
				if st, err := os.Stat(m); err == nil && st.IsDir() {
					if err := addDir(m); err != nil {
						return nil, err
					}
					continue
				}
				add(m)
			}
			continue
		}
		add(pat)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ingest: no log files")
	}
	return out, nil
}

// PlanFiles expands patterns (see Expand) and stats every resulting file
// into a shard plan. Unlike Expand it requires each planned file to exist
// and be a regular file, because the planner's byte sizes feed shard
// scheduling and the cache's source digests.
func PlanFiles(patterns []string) (Plan, error) {
	paths, err := Expand(patterns)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{Shards: make([]Shard, 0, len(paths))}
	for i, path := range paths {
		st, err := os.Stat(path)
		if err != nil {
			return Plan{}, fmt.Errorf("ingest: plan: %w", err)
		}
		if !st.Mode().IsRegular() {
			return Plan{}, fmt.Errorf("ingest: plan: %s is not a regular file", path)
		}
		p.Shards = append(p.Shards, Shard{Path: path, Bytes: st.Size(), Ordinal: i})
	}
	return p, nil
}
