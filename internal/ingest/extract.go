package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"gpuresilience/internal/intern"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/parallel"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// Options configures a sharded Stage I run.
type Options struct {
	// Workers bounds the run's total parallelism: with one shard it is the
	// chunk-level worker count of the existing sharded extractor, with
	// many shards it is how many files parse concurrently. 0 means
	// GOMAXPROCS, 1 is fully sequential.
	Workers int
	// Lenient switches every shard to the corruption-tolerant extractor.
	// Lenient runs bypass the cache (quarantine state is not persisted).
	Lenient bool
	// LenientOptions carries the run-wide error budgets. The absolute
	// budget also fails any single shard fast; the fractional budget is
	// evaluated once over the merged totals, matching the single-stream
	// rule that a running fraction is never checked mid-stream.
	LenientOptions syslog.LenientOptions
	// Cache enables the event-shard cache when non-nil.
	Cache *Cache
	// Obs receives the ingest spans and cache counters when non-nil.
	Obs *obs.Registry
}

// ShardInfo is one shard's per-run record: provenance for manifests plus
// what the cache did for it.
type ShardInfo struct {
	// Path is the shard's log file.
	Path string
	// Digest is the file's content digest (size + SHA-256), the same shape
	// run manifests pin inputs with.
	Digest obs.FileDigest
	// Events is how many events the shard contributed.
	Events int
	// Outcome says whether the shard was served from cache.
	Outcome CacheOutcome
}

// Result is a sharded Stage I run's output: the merged event stream,
// aggregate scan statistics, and the per-shard records.
type Result struct {
	// Events is the merged stream, ordered by (timestamp, shard ordinal,
	// source line).
	Events []xid.Event
	// Stats sums every shard's scan statistics.
	Stats syslog.ExtractStats
	// Ingestion is the merged lenient report (nil on strict runs), with
	// quarantine line numbers rebased to the concatenated stream.
	Ingestion *syslog.IngestionReport
	// Shards records each shard in plan order.
	Shards []ShardInfo
}

// shardState is the per-shard scratch the extraction phases fill in.
type shardState struct {
	digest  [digestLen]byte
	size    int64
	events  []xid.Event
	stats   syslog.ExtractStats
	report  *syslog.IngestionReport
	outcome CacheOutcome
}

// hashFile streams one file through SHA-256 without retaining its bytes.
func hashFile(path string) ([digestLen]byte, int64, error) {
	var sum [digestLen]byte
	f, err := os.Open(path)
	if err != nil {
		return sum, 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return sum, 0, fmt.Errorf("ingest: hash %s: %w", path, err)
	}
	copy(sum[:], h.Sum(nil))
	return sum, n, nil
}

// Extract runs Stage I over every shard in the plan and merges the
// results. Cached shards load without parsing; the rest parse concurrently
// on the pooled byte parsers (bounded by opt.Workers) and are written back
// to the cache. The merged stream and statistics are identical at any
// worker count, and produce Tables I-III byte-identical to a single run
// over the shards' concatenation in plan order.
//
// When opt.Obs is enabled the run records the ingest.shards gauge, the
// cache.{hit,miss,invalidated,bypass,write} counters, a per-shard
// stage1.shard.N span for every parsed shard, and the usual umbrella
// stage1.extract / stage1.lenient span — only when at least one shard
// actually parsed, so a fully cache-warm run is recognizable by that
// span's absence.
func Extract(plan Plan, opt Options) (*Result, error) {
	n := len(plan.Shards)
	if n == 0 {
		return nil, fmt.Errorf("ingest: empty plan")
	}
	reg := opt.Obs
	reg.Gauge("ingest.shards").Set(int64(n))
	states := make([]shardState, n)

	cacheable := opt.Cache != nil && !opt.Lenient
	if opt.Cache != nil && opt.Lenient {
		reg.Counter("cache.bypass").Add(int64(n))
		for i := range states {
			states[i].outcome = CacheBypass
		}
	}

	// Probe phase: hash every source and try its cache entry, in
	// parallel. Counters are bumped after the fan-in, in plan order, so
	// metric totals are deterministic (they would be anyway — counters
	// are atomic — but ordering keeps traces readable).
	if cacheable {
		err := parallel.ForEach(n, opt.Workers, func(i int) error {
			st := &states[i]
			var err error
			st.digest, st.size, err = hashFile(plan.Shards[i].Path)
			if err != nil {
				return err
			}
			var p *Payload
			p, st.outcome = opt.Cache.Load(plan.Shards[i].Path, st.digest)
			if st.outcome == CacheHit {
				st.events, st.stats = p.Events, p.Stats
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range states {
			reg.Counter("cache." + states[i].outcome.String()).Add(1)
		}
	}

	// Parse phase: every shard the cache could not serve. The umbrella
	// span exists only when this phase has work, so its absence marks a
	// fully warm run.
	var toParse []int
	for i := range states {
		if states[i].outcome != CacheHit {
			toParse = append(toParse, i)
		}
	}
	if len(toParse) > 0 {
		if err := parseShards(plan, states, toParse, opt); err != nil {
			return nil, err
		}
	}

	res := &Result{Shards: make([]ShardInfo, n)}
	streams := make([][]xid.Event, n)
	var reports []*syslog.IngestionReport
	for i := range states {
		st := &states[i]
		streams[i] = st.events
		res.Stats.Lines += st.stats.Lines
		res.Stats.XIDLines += st.stats.XIDLines
		res.Stats.Skipped += st.stats.Skipped
		res.Stats.Malformed += st.stats.Malformed
		if st.report != nil {
			reports = append(reports, st.report)
		}
		res.Shards[i] = ShardInfo{
			Path:    plan.Shards[i].Path,
			Digest:  obs.FileDigest{Bytes: st.size, SHA256: hex.EncodeToString(st.digest[:])},
			Events:  len(st.events),
			Outcome: st.outcome,
		}
	}
	res.Events = mergeShards(streams)
	if opt.Lenient {
		rep, err := mergeReports(reports, opt.LenientOptions)
		res.Ingestion = rep
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// parseShards runs Stage I over the listed shards. A single-shard plan
// keeps the whole worker budget for chunk-level parallelism inside the
// file (the pre-sharding fast path); a multi-shard plan parallelizes
// across files with sequential per-file scans, which keeps every shard's
// output and statistics chunking-independent.
func parseShards(plan Plan, states []shardState, toParse []int, opt Options) error {
	var (
		sp        *obs.Span
		meter     parallel.WorkerMeter
		alloc     *intern.Stats
		shardSpan func(ordinal int) *obs.Span
	)
	reg := opt.Obs
	if reg.Enabled() {
		name := "stage1.extract"
		if opt.Lenient {
			name = "stage1.lenient"
		}
		sp = reg.StartSpan(name)
		sp.SetWorkers(parallel.Resolve(opt.Workers))
		meter = sp.ObserveWorker
		alloc = new(intern.Stats)
		defer func() {
			sp.End()
			reg.Counter("intern.hits").Add(alloc.Hits)
			reg.Counter("intern.misses").Add(alloc.Misses)
			reg.Counter("stage1.alloc_bytes").Add(alloc.Bytes)
		}()
		shardSpan = func(ordinal int) *obs.Span {
			return reg.StartSpan(fmt.Sprintf("stage1.shard.%03d", ordinal))
		}
	}

	single := len(plan.Shards) == 1
	innerWorkers, outerWorkers := 1, opt.Workers
	var outerMeter parallel.WorkerMeter
	if single {
		// One file: chunk-level parallelism inside the scan, metered per
		// chunk exactly like the pre-sharding pipeline.
		innerWorkers, outerWorkers = opt.Workers, 1
	} else {
		outerMeter = meter
		meter = nil
	}

	allocs := make([]intern.Stats, len(toParse))
	err := parallel.ForEachMeter(len(toParse), outerWorkers, outerMeter, func(k int) error {
		i := toParse[k]
		st := &states[i]
		shard := plan.Shards[i]
		f, err := os.Open(shard.Path)
		if err != nil {
			return err
		}
		defer f.Close()

		// The parse pass doubles as the hash pass when the probe phase
		// did not already digest the file.
		var src io.Reader = f
		var hr *obs.HashingReader
		if st.size == 0 && st.digest == [digestLen]byte{} {
			hr = obs.NewHashingReader(f)
			src = hr
		}
		var cr *obs.CountingReader
		if sp != nil {
			cr = obs.NewCountingReader(src)
			src = cr
		}
		collect := func(ev xid.Event) error {
			st.events = append(st.events, ev)
			return nil
		}
		if opt.Lenient {
			lopt := opt.LenientOptions
			lopt.MaxBadFrac = 0 // fractional budget applies to the merged stream only
			st.report, err = syslog.ExtractLenientParallelAlloc(src, innerWorkers, lopt, meter, &allocs[k], collect)
			if st.report != nil {
				st.stats = syslog.ExtractStats{
					Lines:     st.report.Lines,
					XIDLines:  st.report.Records,
					Skipped:   st.report.Noise,
					Malformed: st.report.BadTotal,
				}
			}
		} else {
			st.stats, err = syslog.ExtractParallelAlloc(src, innerWorkers, meter, &allocs[k], collect)
		}
		if err != nil {
			return fmt.Errorf("ingest: shard %s: %w", shard.Path, err)
		}
		if hr != nil {
			d := hr.Digest()
			st.size = d.Bytes
			sum, derr := hex.DecodeString(d.SHA256)
			if derr == nil {
				copy(st.digest[:], sum)
			}
		}
		if ssp := shardSpan; ssp != nil {
			s := ssp(shard.Ordinal)
			s.AddIn(int64(st.stats.Lines))
			s.AddOut(int64(len(st.events)))
			if cr != nil {
				s.AddBytes(cr.N())
			}
			s.End()
		}
		if sp != nil && cr != nil {
			sp.AddBytes(cr.N())
		}
		if opt.Cache != nil && !opt.Lenient {
			p := &Payload{SourceDigest: st.digest, SourcePath: shard.Path, Stats: st.stats, Events: st.events}
			if err := opt.Cache.Store(shard.Path, p); err != nil {
				return err
			}
			reg.Counter("cache.write").Add(1)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range allocs {
		if alloc != nil {
			alloc.Add(allocs[i])
		}
	}
	if sp != nil {
		var lines, events int64
		for _, i := range toParse {
			lines += int64(states[i].stats.Lines)
			events += int64(len(states[i].events))
		}
		sp.AddIn(lines)
		sp.AddOut(events)
	}
	return nil
}

// mergeReports folds per-shard lenient reports into one run-wide report:
// counts sum, quarantine samples concatenate in plan order with line
// numbers rebased to the concatenated stream (re-trimmed to the per-class
// cap), and the run-wide error budgets are enforced over the merged
// totals. The returned error, if any, is the same *syslog.BudgetError a
// single-stream run would fail with.
func mergeReports(reports []*syslog.IngestionReport, opt syslog.LenientOptions) (*syslog.IngestionReport, error) {
	merged := &syslog.IngestionReport{}
	perClass := opt.QuarantinePerClass
	if perClass <= 0 {
		perClass = 4 // defaultQuarantinePerClass in internal/syslog
	}
	var kept [syslog.NumLineClasses]int
	offset := 0
	for _, r := range reports {
		merged.Records += r.Records
		merged.Noise += r.Noise
		for c := 0; c < syslog.NumLineClasses; c++ {
			merged.Bad[c] += r.Bad[c]
		}
		merged.BadTotal += r.BadTotal
		for _, q := range r.Quarantine {
			if kept[q.Class] >= perClass {
				continue
			}
			kept[q.Class]++
			q.Line += offset
			merged.Quarantine = append(merged.Quarantine, q)
		}
		offset += r.Lines
		merged.Lines += r.Lines
	}
	// Dominant is stamped only on failure, matching the single-stream
	// report (a clean run leaves Budget.Dominant at its zero value).
	merged.Budget = syslog.BudgetStatus{
		MaxBadLines: opt.MaxBadLines,
		MaxBadFrac:  opt.MaxBadFrac,
	}
	if opt.MaxBadLines > 0 && merged.BadTotal > opt.MaxBadLines {
		dom, _ := merged.Dominant()
		merged.Budget.Exceeded = true
		merged.Budget.Dominant = dom
		return merged, &syslog.BudgetError{
			Kind: syslog.BudgetLines, BadTotal: merged.BadTotal,
			Lines: merged.Lines, Limit: float64(opt.MaxBadLines), Dominant: dom,
		}
	}
	if opt.MaxBadFrac > 0 && merged.BadFrac() > opt.MaxBadFrac {
		dom, _ := merged.Dominant()
		merged.Budget.Exceeded = true
		merged.Budget.Dominant = dom
		return merged, &syslog.BudgetError{
			Kind: syslog.BudgetFraction, BadTotal: merged.BadTotal,
			Lines: merged.Lines, Limit: opt.MaxBadFrac, Dominant: dom,
		}
	}
	return merged, nil
}
