package ingest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"gpuresilience/internal/xid"
)

// randomStream builds n events with heavily colliding timestamps (so the
// ordinal tiebreak is actually exercised), tagged through Detail with their
// origin so merge order is checkable.
func randomStream(rng *rand.Rand, shard, n int) []xid.Event {
	base := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	events := make([]xid.Event, n)
	for i := range events {
		events[i] = xid.Event{
			Time:   base.Add(time.Duration(rng.Intn(8)) * time.Second),
			Node:   fmt.Sprintf("gpub%03d", rng.Intn(4)),
			GPU:    rng.Intn(8),
			Code:   xid.Code(rng.Intn(150)),
			Detail: fmt.Sprintf("s%d#%d", shard, i),
		}
	}
	return events
}

// referenceMerge is the specification: concatenate the (already
// time-normalized) shards in plan order, then stable-sort by time only.
func referenceMerge(shards [][]xid.Event) []xid.Event {
	var all []xid.Event
	for _, s := range shards {
		cp := append([]xid.Event(nil), s...)
		normalizeShard(cp)
		all = append(all, cp...)
	}
	sort.SliceStable(all, func(i, k int) bool { return all[i].Time.Before(all[k].Time) })
	return all
}

func TestMergeShardsMatchesStableConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		shards := make([][]xid.Event, k)
		for i := range shards {
			// Sizes include empty and single-event shards often.
			n := rng.Intn(12)
			shards[i] = randomStream(rng, i, n)
		}
		want := referenceMerge(shards)
		got := mergeShards(shards)
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: want empty, got %d events", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged order diverges from stable concatenation\n got: %v\nwant: %v",
				trial, got, want)
		}
	}
}

func TestMergeShardsAllEmpty(t *testing.T) {
	if got := mergeShards([][]xid.Event{nil, {}, nil}); got != nil {
		t.Fatalf("all-empty merge: %v", got)
	}
}

func TestMergeShardsSingleNonEmptyFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomStream(rng, 0, 20)
	want := referenceMerge([][]xid.Event{s})
	got := mergeShards([][]xid.Event{nil, s, {}})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("single non-empty shard fast path diverges")
	}
}

func TestNormalizeShardIsStable(t *testing.T) {
	ts := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	events := []xid.Event{
		{Time: ts.Add(time.Second), Detail: "late-1"},
		{Time: ts, Detail: "a"},
		{Time: ts, Detail: "b"},
		{Time: ts.Add(time.Second), Detail: "late-2"},
		{Time: ts, Detail: "c"},
	}
	normalizeShard(events)
	var got []string
	for _, ev := range events {
		got = append(got, ev.Detail)
	}
	want := []string{"a", "b", "c", "late-1", "late-2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stable sort order: %v, want %v", got, want)
	}
}

func TestTimeSortedDetectsOrder(t *testing.T) {
	ts := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	sorted := []xid.Event{{Time: ts}, {Time: ts}, {Time: ts.Add(time.Second)}}
	if !timeSorted(sorted) {
		t.Fatal("sorted stream reported unsorted")
	}
	unsorted := []xid.Event{{Time: ts.Add(time.Second)}, {Time: ts}}
	if timeSorted(unsorted) {
		t.Fatal("unsorted stream reported sorted")
	}
	if !timeSorted(nil) {
		t.Fatal("empty stream reported unsorted")
	}
}
