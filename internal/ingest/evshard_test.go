package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// samplePayload builds a payload with the representative awkward cases:
// interned strings shared across events, same-timestamp neighbors,
// backwards time deltas (negative zigzag), and empty detail strings.
func samplePayload() *Payload {
	base := time.Date(2023, 6, 1, 12, 0, 0, 500, time.UTC)
	return &Payload{
		SourceDigest: sha256.Sum256([]byte("source")),
		SourcePath:   "logs/day1.log",
		Stats:        syslog.ExtractStats{Lines: 120, XIDLines: 5, Skipped: 110, Malformed: 5},
		Events: []xid.Event{
			{Time: base, Node: "gpub001", GPU: 0, Code: xid.MMU, Detail: "fault @ 0x7f"},
			{Time: base, Node: "gpub002", GPU: 3, Code: xid.NVLink, Detail: ""},
			{Time: base.Add(time.Nanosecond), Node: "gpub001", GPU: 7, Code: xid.DBE, Detail: "row 9"},
			{Time: base.Add(-time.Hour), Node: "gpub001", GPU: 0, Code: xid.MMU, Detail: "fault @ 0x7f"},
			{Time: time.Unix(0, 0).UTC(), Node: "x", GPU: 0, Code: xid.Code(999), Detail: "fault @ 0x7f"},
		},
	}
}

// samePayload compares two payloads field by field, with time.Time.Equal
// for timestamps so internal representation differences cannot hide.
func samePayload(t *testing.T, got, want *Payload) {
	t.Helper()
	if got.SourceDigest != want.SourceDigest {
		t.Fatalf("source digest: %x != %x", got.SourceDigest, want.SourceDigest)
	}
	if got.ConfigDigest != want.ConfigDigest {
		t.Fatalf("config digest: %x != %x", got.ConfigDigest, want.ConfigDigest)
	}
	if got.SourcePath != want.SourcePath {
		t.Fatalf("source path: %q != %q", got.SourcePath, want.SourcePath)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats: %+v != %+v", got.Stats, want.Stats)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("event count: %d != %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		g, w := got.Events[i], want.Events[i]
		if !g.Time.Equal(w.Time) || g.Node != w.Node || g.GPU != w.GPU ||
			g.Code != w.Code || g.Detail != w.Detail {
			t.Fatalf("event %d: %+v != %+v", i, g, w)
		}
	}
}

func TestEvshardRoundTrip(t *testing.T) {
	p := samplePayload()
	p.ConfigDigest = DefaultCacheKey().digest()
	got, err := DecodeShard(EncodeShard(p))
	if err != nil {
		t.Fatal(err)
	}
	samePayload(t, got, p)
}

func TestEvshardRoundTripEmpty(t *testing.T) {
	p := &Payload{SourcePath: "", Stats: syslog.ExtractStats{}}
	got, err := DecodeShard(EncodeShard(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 || got.Stats != p.Stats {
		t.Fatalf("empty payload round-trip: %+v", got)
	}
}

func TestEvshardEncodeDeterministic(t *testing.T) {
	p := samplePayload()
	a, b := EncodeShard(p), EncodeShard(p)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same payload differ")
	}
}

// wantFormatError asserts err is a *FormatError, the typed failure the
// cache layer keys invalidation on.
func wantFormatError(t *testing.T, err error, ctx string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: decode succeeded, want *FormatError", ctx)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: error %v is not a *FormatError", ctx, err)
	}
	if fe.Error() == "" {
		t.Fatalf("%s: empty error string", ctx)
	}
}

func TestDecodeTruncatedAtEveryPrefix(t *testing.T) {
	data := EncodeShard(samplePayload())
	for n := 0; n < len(data); n++ {
		_, err := DecodeShard(data[:n])
		wantFormatError(t, err, "prefix")
	}
}

func TestDecodeBitFlipAtEveryByte(t *testing.T) {
	data := EncodeShard(samplePayload())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		_, err := DecodeShard(mut)
		wantFormatError(t, err, "bit flip")
	}
}

// patchFormatVersion rewrites a shard image's version field in place and
// re-stamps the trailer checksum, imitating a binary from another release.
func patchFormatVersion(raw []byte, v uint32) {
	binary.LittleEndian.PutUint32(raw[len(evshardMagic):], v)
	sum := sha256.Sum256(raw[:len(raw)-digestLen])
	copy(raw[len(raw)-digestLen:], sum[:])
}

func TestDecodeVersionMismatch(t *testing.T) {
	data := EncodeShard(samplePayload())
	// Patch the version field and re-stamp the checksum so the version
	// check itself (not the checksum) must reject the image.
	patchFormatVersion(data, FormatVersion+1)
	_, err := DecodeShard(data)
	wantFormatError(t, err, "version bump")
	var fe *FormatError
	errors.As(err, &fe)
	if want := "format version"; !bytes.Contains([]byte(fe.Reason), []byte(want)) {
		t.Fatalf("reason %q does not mention %q", fe.Reason, want)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	data := EncodeShard(samplePayload())
	// Insert junk between the columns and the trailer, re-stamping the
	// checksum so only the trailing-bytes check can reject it.
	body := append([]byte(nil), data[:len(data)-digestLen]...)
	body = append(body, 0x00, 0x01)
	sum := sha256.Sum256(body)
	_, err := DecodeShard(append(body, sum[:]...))
	wantFormatError(t, err, "trailing bytes")
}

func TestDecodeBadMagic(t *testing.T) {
	data := EncodeShard(samplePayload())
	data[0] = 'X'
	_, err := DecodeShard(data)
	wantFormatError(t, err, "bad magic")
}

func TestCacheKeyDigestDistinguishesConfigs(t *testing.T) {
	a := CacheKey{ParserVersion: 1, Strict: true}.digest()
	b := CacheKey{ParserVersion: 2, Strict: true}.digest()
	c := CacheKey{ParserVersion: 1, Strict: false}.digest()
	if a == b || a == c || b == c {
		t.Fatal("distinct cache keys share a digest")
	}
	if a != DefaultCacheKey().digest() {
		t.Fatal("DefaultCacheKey drifted from ParserVersion 1 strict")
	}
}
