package ingest

import (
	"container/heap"
	"sort"

	"gpuresilience/internal/xid"
)

// timeSorted reports whether events are non-decreasing in time, which is
// the common case for syslogs (and always true for simulator output); the
// merge then skips the per-shard normalization sort entirely.
func timeSorted(events []xid.Event) bool {
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			return false
		}
	}
	return true
}

// normalizeShard stable-sorts one shard's events by timestamp only, so
// same-timestamp lines keep their source line order. For a time-ordered
// file this is a single O(n) verification pass.
func normalizeShard(events []xid.Event) {
	if timeSorted(events) {
		return
	}
	sort.SliceStable(events, func(i, k int) bool {
		return events[i].Time.Before(events[k].Time)
	})
}

// mergeHead is one shard's cursor in the k-way merge heap.
type mergeHead struct {
	events  []xid.Event
	next    int
	ordinal int
}

// mergeHeap orders shard cursors by (head timestamp, shard ordinal). The
// ordinal tiebreak is what makes the merge a stable total order: events
// with equal timestamps come out in plan order, exactly as a concatenation
// of the planned files would present them.
type mergeHeap []*mergeHead

// Len implements heap.Interface.
func (h mergeHeap) Len() int { return len(h) }

// Less orders cursors by head timestamp, breaking ties by shard ordinal.
func (h mergeHeap) Less(i, k int) bool {
	ti, tk := h[i].events[h[i].next].Time, h[k].events[h[k].next].Time
	if ti.Before(tk) {
		return true
	}
	if tk.Before(ti) {
		return false
	}
	return h[i].ordinal < h[k].ordinal
}

// Swap implements heap.Interface.
func (h mergeHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }

// Push implements heap.Interface.
func (h *mergeHeap) Push(x any) { *h = append(*h, x.(*mergeHead)) }

// Pop implements heap.Interface.
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) head() *mergeHead { return h[0] }

// mergeShards k-way merges per-shard event streams into one slice ordered
// by (timestamp, shard ordinal, source line). Each input shard is first
// normalized to non-decreasing timestamps (stable, so line order survives
// within equal timestamps); the merge itself uses O(k) auxiliary memory
// beyond the output. The invariant downstream relies on: restricted to any
// set of equal-timestamp events, the merged order equals the order of the
// shards' concatenation in plan order — and Stage II's coalescing sorts
// stably by time first, so Tables I-III from the merged stream are
// byte-identical to a single concatenated-file run. See docs/ingest.md.
func mergeShards(shards [][]xid.Event) []xid.Event {
	total := 0
	nonEmpty := 0
	for _, s := range shards {
		normalizeShard(s)
		total += len(s)
		if len(s) > 0 {
			nonEmpty++
		}
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		for _, s := range shards {
			if len(s) > 0 {
				return s
			}
		}
	}
	out := make([]xid.Event, 0, total)
	h := make(mergeHeap, 0, nonEmpty)
	for i, s := range shards {
		if len(s) > 0 {
			h = append(h, &mergeHead{events: s, ordinal: i})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		top := h.head()
		out = append(out, top.events[top.next])
		top.next++
		if top.next == len(top.events) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}
