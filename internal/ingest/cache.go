package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// CacheOutcome classifies what the event-shard cache did for one shard.
type CacheOutcome int

// Cache outcomes, in the order a lookup decides them.
const (
	// CacheDisabled means no cache was configured for the run.
	CacheDisabled CacheOutcome = iota
	// CacheBypass means the run's Stage I configuration is not cacheable
	// (lenient mode carries quarantine state the cache does not persist).
	CacheBypass
	// CacheMiss means no cached shard existed for the source file.
	CacheMiss
	// CacheInvalidated means a cached shard existed but failed validation:
	// format-version, source-digest, or parser-config mismatch, or a
	// corrupt file. The shard is re-parsed and the entry overwritten.
	CacheInvalidated
	// CacheHit means the cached events were served and the parse skipped.
	CacheHit
)

// String names the outcome the way the obs counters do.
func (o CacheOutcome) String() string {
	switch o {
	case CacheDisabled:
		return "disabled"
	case CacheBypass:
		return "bypass"
	case CacheMiss:
		return "miss"
	case CacheInvalidated:
		return "invalidated"
	case CacheHit:
		return "hit"
	default:
		return fmt.Sprintf("CacheOutcome(%d)", int(o))
	}
}

// CacheKey is the parser configuration half of a cache entry's identity
// (the other half is the source file's content digest). Two runs whose
// keys differ can never serve each other's cached shards.
type CacheKey struct {
	// ParserVersion is the Stage I parser generation (ParserVersion for
	// current binaries; tests vary it to prove config invalidation).
	ParserVersion int
	// Strict is true for the default strict extractor. The lenient
	// extractor bypasses the cache entirely, but the flag is part of the
	// key so a future lenient-caching format cannot collide with strict
	// entries.
	Strict bool
}

// DefaultCacheKey is the key current strict-mode binaries write and read.
func DefaultCacheKey() CacheKey {
	return CacheKey{ParserVersion: ParserVersion, Strict: true}
}

// digest renders the key's canonical digest. The canonical string is
// versioned independently of its fields so adding a field changes every
// digest deliberately, not accidentally.
func (k CacheKey) digest() [digestLen]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("evshard-key/1|parser=%d|strict=%t", k.ParserVersion, k.Strict)))
}

// Cache is a directory of .evshard files, one per (source path, parser
// config). Entries are named by the hash of the source path, so a source
// whose content changes overwrites its own entry instead of leaking stale
// siblings; validity is decided by the digests inside the header.
type Cache struct {
	// Dir is the cache directory, created on first store.
	Dir string
	// Key identifies the parser configuration for every lookup and store.
	Key CacheKey
}

// NewCache returns a cache rooted at dir with the default key.
func NewCache(dir string) *Cache {
	return &Cache{Dir: dir, Key: DefaultCacheKey()}
}

// entryPath maps a source log path to its cache file. The name hashes the
// absolute path so relative invocations from different directories share
// entries for the same file.
func (c *Cache) entryPath(source string) string {
	abs, err := filepath.Abs(source)
	if err != nil {
		abs = source
	}
	sum := sha256.Sum256([]byte(abs))
	return filepath.Join(c.Dir, hex.EncodeToString(sum[:])[:40]+".evshard")
}

// Load looks up the cached shard for source, which currently hashes to
// sourceDigest. It returns (payload, CacheHit) only when the entry's
// format version, source digest, and parser-config digest all match; any
// mismatch or corruption is (nil, CacheInvalidated), a missing entry is
// (nil, CacheMiss). Load never fails the run: a broken cache behaves like
// a cold one.
func (c *Cache) Load(source string, sourceDigest [digestLen]byte) (*Payload, CacheOutcome) {
	data, err := os.ReadFile(c.entryPath(source))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, CacheMiss
		}
		return nil, CacheInvalidated
	}
	p, err := DecodeShard(data)
	if err != nil {
		return nil, CacheInvalidated
	}
	if p.SourceDigest != sourceDigest || p.ConfigDigest != c.Key.digest() {
		return nil, CacheInvalidated
	}
	return p, CacheHit
}

// Store writes p as source's cache entry atomically (temp file + rename),
// stamping the payload with the cache's parser-config digest. A failed
// store is reported but leaves no partial entry behind.
func (c *Cache) Store(source string, p *Payload) error {
	p.ConfigDigest = c.Key.digest()
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("ingest: cache dir: %w", err)
	}
	dst := c.entryPath(source)
	tmp, err := os.CreateTemp(c.Dir, filepath.Base(dst)+".tmp*")
	if err != nil {
		return fmt.Errorf("ingest: cache temp: %w", err)
	}
	_, werr := tmp.Write(EncodeShard(p))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("ingest: cache store %s: %w", dst, werr)
	}
	return nil
}
