package ingest

import (
	"bytes"
	"errors"
	"testing"

	"gpuresilience/internal/logfuzz"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// fuzzSeedLogs builds the corpus inputs: a clean time-ordered log plus
// logfuzz-damaged variants of it, one per corruption op, so the fuzzer
// starts from realistic shapes instead of empty bytes.
func fuzzSeedLogs(f *testing.F) [][]byte {
	f.Helper()
	clean := orderedLog(40, 1)
	seeds := [][]byte{nil, clean}
	for _, op := range logfuzz.AllOps() {
		damaged, _, err := logfuzz.Corrupt(clean, logfuzz.Config{
			Seed: uint64(op) + 1, Rate: 0.2, Ops: []logfuzz.Op{op}, OversizeBytes: 8 << 10,
		})
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, damaged)
	}
	return seeds
}

// FuzzEvshardRoundTrip: for any log bytes, the payload built by lenient
// Stage I survives EncodeShard/DecodeShard losslessly — events, stats,
// digests, and path all come back exactly.
func FuzzEvshardRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeedLogs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var events []xid.Event
		rep, err := syslog.ExtractLenientParallelAlloc(bytes.NewReader(data), 1,
			syslog.LenientOptions{}, nil, nil, func(ev xid.Event) error {
				events = append(events, ev)
				return nil
			})
		if err != nil || rep == nil {
			t.Skip() // budget-free lenient extraction only fails on reader errors
		}
		p := &Payload{
			SourceDigest: [digestLen]byte{1, 2, 3},
			ConfigDigest: DefaultCacheKey().digest(),
			SourcePath:   "fuzz.log",
			Stats: syslog.ExtractStats{Lines: rep.Lines, XIDLines: rep.Records,
				Skipped: rep.Noise, Malformed: rep.BadTotal},
			Events: events,
		}
		got, err := DecodeShard(EncodeShard(p))
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if got.SourceDigest != p.SourceDigest || got.ConfigDigest != p.ConfigDigest ||
			got.SourcePath != p.SourcePath || got.Stats != p.Stats {
			t.Fatalf("header fields mutated: %+v != %+v", got, p)
		}
		if len(got.Events) != len(p.Events) {
			t.Fatalf("%d events, want %d", len(got.Events), len(p.Events))
		}
		for i := range p.Events {
			g, w := got.Events[i], p.Events[i]
			if !g.Time.Equal(w.Time) || g.Node != w.Node || g.GPU != w.GPU ||
				g.Code != w.Code || g.Detail != w.Detail {
				t.Fatalf("event %d mutated: %+v != %+v", i, g, w)
			}
		}
	})
}

// FuzzEvshardDecode: DecodeShard never panics on arbitrary bytes; it either
// succeeds or returns a typed *FormatError. When it succeeds, a re-encoded
// re-decode is a fixed point (decode∘encode∘decode == decode).
func FuzzEvshardDecode(f *testing.F) {
	// Seed with valid images of real payloads, their logfuzz-mangled
	// variants, and assorted truncations/bit flips, so the fuzzer starts at
	// the format's decision boundaries.
	for _, log := range fuzzSeedLogs(f) {
		var events []xid.Event
		rep, err := syslog.ExtractLenientParallelAlloc(bytes.NewReader(log), 1,
			syslog.LenientOptions{}, nil, nil, func(ev xid.Event) error {
				events = append(events, ev)
				return nil
			})
		if err != nil || rep == nil {
			continue
		}
		img := EncodeShard(&Payload{
			SourcePath: "seed.log",
			Stats:      syslog.ExtractStats{Lines: rep.Lines, XIDLines: rep.Records},
			Events:     events,
		})
		f.Add(img)
		f.Add(img[:len(img)/2])
		mangled, _, err := logfuzz.Corrupt(img, logfuzz.Config{Seed: 7, Rate: 0.3})
		if err == nil {
			f.Add(mangled)
		}
		if len(img) > 20 {
			flipped := append([]byte(nil), img...)
			flipped[20] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeShard(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FormatError", err)
			}
			return
		}
		reimg := EncodeShard(p)
		p2, err := DecodeShard(reimg)
		if err != nil {
			t.Fatalf("re-encode of a decoded payload does not decode: %v", err)
		}
		if p2.SourcePath != p.SourcePath || p2.Stats != p.Stats || len(p2.Events) != len(p.Events) {
			t.Fatalf("decode/encode/decode not a fixed point: %+v != %+v", p2, p)
		}
		for i := range p.Events {
			g, w := p2.Events[i], p.Events[i]
			if !g.Time.Equal(w.Time) || g.Node != w.Node || g.GPU != w.GPU ||
				g.Code != w.Code || g.Detail != w.Detail {
				t.Fatalf("event %d not a fixed point: %+v != %+v", i, g, w)
			}
		}
	})
}
