package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, "gsp")
	b := Derive(42, "pmu")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams with distinct names collided %d times", same)
	}
}

func TestDeriveStable(t *testing.T) {
	a := Derive(7, "nvlink")
	b := Derive(7, "nvlink")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive is not stable for equal (seed, name)")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := NewStream(2)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewStream(3)
	const rate = 0.25
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Fatalf("Exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestPoissonMean(t *testing.T) {
	s := NewStream(4)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.08*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := NewStream(5)
	for _, mean := range []float64{1.0, 2.5, 10, 120} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			k := s.Geometric(mean)
			if k < 1 {
				t.Fatalf("Geometric returned %d < 1", k)
			}
			sum += float64(k)
		}
		got := sum / n
		want := mean
		if want < 1 {
			want = 1
		}
		if math.Abs(got-want) > 0.06*want+0.05 {
			t.Fatalf("Geometric(mean=%v) sample mean = %v", mean, got)
		}
	}
}

func TestLogNormalMeanP50(t *testing.T) {
	s := NewStream(6)
	const mean, median = 0.88, 0.45
	var sum float64
	xs := make([]float64, 0, 200000)
	for i := 0; i < 200000; i++ {
		v := s.LogNormalMeanP50(mean, median)
		sum += v
		xs = append(xs, v)
	}
	got := sum / float64(len(xs))
	if math.Abs(got-mean) > 0.08*mean {
		t.Fatalf("LogNormalMeanP50 mean = %v, want ~%v", got, mean)
	}
	sort.Float64s(xs)
	p50 := xs[len(xs)/2]
	if math.Abs(p50-median) > 0.06*median {
		t.Fatalf("LogNormalMeanP50 median = %v, want ~%v", p50, median)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	s := NewStream(7)
	const scale = 4.0
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Weibull(1, scale)
	}
	mean := sum / n
	if math.Abs(mean-scale) > 0.05*scale {
		t.Fatalf("Weibull(1, %v) mean = %v", scale, mean)
	}
}

func TestCategoricalProportions(t *testing.T) {
	s := NewStream(8)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("category ratio = %v, want ~3", ratio)
	}
}

func TestUniformOrderStatsSortedAndBounded(t *testing.T) {
	s := NewStream(9)
	xs := s.UniformOrderStats(1000, 500)
	if len(xs) != 1000 {
		t.Fatalf("got %d samples", len(xs))
	}
	for i, x := range xs {
		if x < 0 || x >= 500 {
			t.Fatalf("sample %d out of range: %v", i, x)
		}
		if i > 0 && xs[i-1] > x {
			t.Fatalf("samples not sorted at %d", i)
		}
	}
	if s.UniformOrderStats(0, 10) != nil {
		t.Fatal("UniformOrderStats(0) should be nil")
	}
}

func TestUniformOrderStatsPropertySorted(t *testing.T) {
	s := NewStream(10)
	f := func(n uint8, span uint16) bool {
		xs := s.UniformOrderStats(int(n%64), float64(span)+1)
		return sort.Float64sAreSorted(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := NewStream(11)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestShufflePermutes(t *testing.T) {
	s := NewStream(12)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}

func TestParetoBounds(t *testing.T) {
	s := NewStream(13)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestChildDeriveStable(t *testing.T) {
	a := NewStream(99).Derive("x")
	b := NewStream(99).Derive("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Stream.Derive is not stable")
	}
}
