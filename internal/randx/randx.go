// Package randx provides deterministic random-number streams and the
// probability distributions used by the Delta fault and workload simulators.
//
// Every stochastic component of the simulation draws from its own named
// Stream derived from a root seed, so adding or reordering components does
// not perturb the draws of unrelated components and whole-cluster runs are
// reproducible from a single seed.
package randx

import (
	"hash/fnv"
	"math"
	"sort"
)

// Stream is a deterministic pseudo-random number generator. It implements a
// SplitMix64 generator, which is statistically strong enough for simulation
// workloads, allocation-free, and trivially seedable from a derived key.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded directly with seed.
func NewStream(seed uint64) *Stream {
	// Avoid the all-zero fixed point by mixing the seed once.
	s := &Stream{state: seed}
	s.Uint64()
	return s
}

// Derive returns a new stream whose seed is derived from the root seed and a
// name. Streams derived with distinct names are statistically independent.
func Derive(seed uint64, name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return NewStream(seed ^ h.Sum64() ^ 0x9e3779b97f4a7c15)
}

// Derive returns a child stream keyed by name, seeded from this stream's
// current state without consuming it observably for other derivations of
// different names.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return NewStream(s.state ^ h.Sum64())
}

// Uint64 returns the next 64 uniformly distributed bits (SplitMix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns a draw from Exp(rate); mean is 1/rate.
// It panics if rate <= 0.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential with non-positive rate")
	}
	u := s.Float64()
	// 1-u is in (0, 1], so Log never sees zero.
	return -math.Log(1-u) / rate
}

// Normal returns a draw from N(mu, sigma^2) via Box-Muller.
func (s *Stream) Normal(mu, sigma float64) float64 {
	u1 := 1 - s.Float64() // (0, 1]
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns a draw whose logarithm is N(mu, sigma^2).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMeanP50 returns a lognormal draw parameterized by its arithmetic
// mean and median, which is how repair-time distributions are usually
// reported. It panics unless mean > median > 0.
func (s *Stream) LogNormalMeanP50(mean, median float64) float64 {
	if median <= 0 || mean <= median {
		panic("randx: LogNormalMeanP50 requires mean > median > 0")
	}
	mu := math.Log(median)
	sigma := math.Sqrt(2 * (math.Log(mean) - mu))
	return s.LogNormal(mu, sigma)
}

// Weibull returns a draw from Weibull(shape k, scale lambda).
func (s *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Weibull with non-positive parameter")
	}
	u := 1 - s.Float64() // (0, 1]
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Pareto returns a draw from a Pareto distribution with minimum xm and tail
// index alpha. Heavy-tailed; used for job-duration tails.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("randx: Pareto with non-positive parameter")
	}
	u := 1 - s.Float64() // (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a draw from Poisson(lambda). For large lambda it uses the
// normal approximation, which is adequate for event-count sampling.
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(s.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			return 0
		}
		return n
	}
	// Knuth's algorithm.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns a draw from a geometric distribution on {1, 2, ...} with
// mean 1/p. Used for episode sizes (number of repeated errors per episode).
func (s *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := 1 - s.Float64() // (0, 1]
	k := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. It panics if weights is empty or sums to a non-positive value.
func (s *Stream) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("randx: Categorical with no positive weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// UniformOrderStats returns n sorted draws uniform on [0, span). This is the
// conditional distribution of Poisson-process arrival times given that
// exactly n events occurred in the window, which is how quota-mode fault
// injection produces exact published counts with realistic spacing.
func (s *Stream) UniformOrderStats(n int, span float64) []float64 {
	if n <= 0 {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Float64() * span
	}
	sort.Float64s(xs)
	return xs
}

// Shuffle permutes xs in place (Fisher-Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
