package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("content of "+name), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteLoadVerify(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, SyslogFile, JobsFile, RepairsFile)
	m, err := WriteManifest(dir, 42, 0.5, "test dataset")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 3 || m.Seed != 42 || m.Scale != 0.5 {
		t.Fatalf("manifest = %+v", m)
	}
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != 42 || loaded.Description != "test dataset" {
		t.Fatalf("loaded = %+v", loaded)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
	p, err := loaded.Path(dir, SyslogFile)
	if err != nil || !strings.HasSuffix(p, SyslogFile) {
		t.Fatalf("path = %q err = %v", p, err)
	}
	if !loaded.Has(JobsFile) || loaded.Has("nonsense") {
		t.Fatal("Has wrong")
	}
}

func TestWriteManifestPartialDataset(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, SyslogFile) // job-free simulation
	m, err := WriteManifest(dir, 1, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 1 || m.Has(JobsFile) {
		t.Fatalf("manifest = %+v", m)
	}
	if _, err := m.Path(dir, JobsFile); err == nil {
		t.Fatal("missing artifact path resolved")
	}
}

func TestWriteManifestEmptyDir(t *testing.T) {
	if _, err := WriteManifest(t.TempDir(), 1, 1, ""); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, SyslogFile, JobsFile)
	if _, err := WriteManifest(dir, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, JobsFile), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestVerifyDetectsMissingFile(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, SyslogFile, RepairsFile)
	if _, err := WriteManifest(dir, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, RepairsFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("missing file not detected")
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("bad json accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile),
		[]byte(`{"formatVersion": 99, "files": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("future format version accepted")
	}
}
