// Package dataset defines the on-disk layout of a simulated Delta dataset —
// the raw system log, the sacct-style job database, and the node repair log
// — plus a manifest with provenance (seed, scale) and content digests, so
// analysis results can always be traced to the exact inputs that produced
// them.
package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gpuresilience/internal/parallel"
)

// Standard file names inside a dataset directory.
const (
	SyslogFile   = "syslog.txt"
	JobsFile     = "jobs.db"
	RepairsFile  = "repairs.log"
	ManifestFile = "manifest.json"
)

// FileInfo records one artifact's size and digest.
type FileInfo struct {
	Bytes  int64  `json:"bytes"`  // file size on disk
	SHA256 string `json:"sha256"` // hex content digest
}

// Manifest describes a dataset.
type Manifest struct {
	FormatVersion int                 `json:"formatVersion"`         // manifest schema version
	Seed          uint64              `json:"seed"`                  // simulation seed the artifacts came from
	Scale         float64             `json:"scale"`                 // fleet-size multiplier of the run
	Description   string              `json:"description,omitempty"` // free-form provenance note
	Files         map[string]FileInfo `json:"files"`                 // per-artifact sizes and digests
}

// currentFormat is the manifest format this package writes.
const currentFormat = 1

// hashFile returns the size and SHA-256 of a file.
func hashFile(path string) (FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileInfo{}, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Bytes: n, SHA256: hex.EncodeToString(h.Sum(nil))}, nil
}

// WriteManifest hashes the dataset artifacts present in dir and writes the
// manifest. At least the syslog must exist; jobs and repairs are optional
// (job-free simulations).
func WriteManifest(dir string, seed uint64, scale float64, description string) (Manifest, error) {
	return WriteManifestWorkers(dir, seed, scale, description, 1)
}

// WriteManifestWorkers is WriteManifest with the artifacts hashed by a
// worker pool — worthwhile at full scale, where the syslog alone runs to
// hundreds of megabytes. workers follows the pipeline convention (0 = all
// cores, 1 = sequential).
func WriteManifestWorkers(dir string, seed uint64, scale float64, description string, workers int) (Manifest, error) {
	m := Manifest{
		FormatVersion: currentFormat,
		Seed:          seed,
		Scale:         scale,
		Description:   description,
		Files:         make(map[string]FileInfo),
	}
	var present []string
	for _, name := range []string{SyslogFile, JobsFile, RepairsFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			present = append(present, name)
		}
	}
	if len(present) == 0 {
		return Manifest{}, errors.New("dataset: no artifacts in directory")
	}
	infos, err := parallel.Map(present, workers, func(name string) (FileInfo, error) {
		info, err := hashFile(filepath.Join(dir, name))
		if err != nil {
			return FileInfo{}, fmt.Errorf("dataset: hash %s: %w", name, err)
		}
		return info, nil
	})
	if err != nil {
		return Manifest{}, err
	}
	for i, name := range present {
		m.Files[name] = infos[i]
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), append(data, '\n'), 0o644); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// LoadManifest reads a dataset's manifest.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("dataset: parse manifest: %w", err)
	}
	if m.FormatVersion != currentFormat {
		return Manifest{}, fmt.Errorf("dataset: unsupported manifest version %d", m.FormatVersion)
	}
	return m, nil
}

// Verify recomputes the digests of every artifact the manifest lists.
func Verify(dir string) (Manifest, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return Manifest{}, err
	}
	for name, want := range m.Files {
		got, err := hashFile(filepath.Join(dir, name))
		if err != nil {
			return Manifest{}, fmt.Errorf("dataset: %s: %w", name, err)
		}
		if got != want {
			return Manifest{}, fmt.Errorf("dataset: %s corrupted: size %d/%d sha %s/%s",
				name, got.Bytes, want.Bytes, got.SHA256[:12], want.SHA256[:12])
		}
	}
	return m, nil
}

// Path returns the full path of an artifact inside the dataset, checking it
// is listed in the manifest.
func (m Manifest) Path(dir, name string) (string, error) {
	if _, ok := m.Files[name]; !ok {
		return "", fmt.Errorf("dataset: manifest has no %s", name)
	}
	return filepath.Join(dir, name), nil
}

// Has reports whether the manifest lists an artifact.
func (m Manifest) Has(name string) bool {
	_, ok := m.Files[name]
	return ok
}
