package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"gpuresilience/internal/cluster"
	"gpuresilience/internal/coalesce"
	"gpuresilience/internal/core"
	"gpuresilience/internal/logfuzz"
	"gpuresilience/internal/obs"
	"gpuresilience/internal/report"
	"gpuresilience/internal/stats"
	"gpuresilience/internal/syslog"
	"gpuresilience/internal/xid"
)

// Options tune a campaign run without touching its outcome: the report is
// byte-identical at any worker count, and the work directory only hosts
// rotation-replay scratch files.
type Options struct {
	// Workers bounds pipeline parallelism (0 = GOMAXPROCS).
	Workers int
	// WorkDir hosts rotation-replay scratch files; required only when the
	// scenario's replay sets rotateEvery.
	WorkDir string
}

// lineLayout is the consolidated-log timestamp format (syslog's emission
// layout), needed here to read timestamps off raw lines for outage windows.
const lineLayout = "2006-01-02T15:04:05.000000Z"

// lineMeta reads the timestamp and node name off a raw log line.
func lineMeta(line []byte) (t time.Time, node string, ok bool) {
	if len(line) < len(lineLayout)+2 {
		return time.Time{}, "", false
	}
	t, err := time.Parse(lineLayout, string(line[:len(lineLayout)]))
	if err != nil || line[len(lineLayout)] != ' ' {
		return time.Time{}, "", false
	}
	rest := line[len(lineLayout)+1:]
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return time.Time{}, "", false
	}
	return t, string(rest[:sp]), true
}

// applyOutages blanks collector-outage windows: lines from affected nodes
// timestamped inside a window are dropped, exactly as a down collector
// daemon loses them. Returns the surviving log and the dropped-line count.
func applyOutages(raw []byte, outages []OutageWindow) ([]byte, int) {
	if len(outages) == 0 {
		return raw, 0
	}
	var out bytes.Buffer
	out.Grow(len(raw))
	dropped := 0
	for len(raw) > 0 {
		line := raw
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			line, raw = raw[:i], raw[i+1:]
		} else {
			raw = nil
		}
		drop := false
		if t, node, ok := lineMeta(line); ok {
			for _, o := range outages {
				if !t.Before(o.Start) && t.Before(o.End) && (o.Nodes == nil || o.Nodes[node]) {
					drop = true
					break
				}
			}
		}
		if drop {
			dropped++
			continue
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes(), dropped
}

// parsesHook is the logfuzz oracle: a line "survives" only if Stage I would
// still accept it as a record.
func parsesHook(line []byte) bool {
	_, ok, err := syslog.ParseLine(string(line))
	return ok && err == nil
}

// extractBatch runs Stage I over a log in the compiled mode. A tripped
// lenient budget comes back as budgetErr with the other returns nil.
func extractBatch(data []byte, pcfg core.PipelineConfig) (events []xid.Event, stage1 BatchReport, budgetErr *syslog.BudgetError, err error) {
	if pcfg.Lenient {
		ev, rep, lerr := core.ExtractEventsLenient(bytes.NewReader(data), pcfg.Workers, syslog.LenientOptions{
			MaxBadLines: pcfg.MaxBadLines,
			MaxBadFrac:  pcfg.MaxBadFrac,
		})
		if lerr != nil {
			var be *syslog.BudgetError
			if errors.As(lerr, &be) {
				return nil, BatchReport{}, be, nil
			}
			return nil, BatchReport{}, nil, lerr
		}
		return ev, BatchReport{
			Lines: rep.Lines, XIDLines: rep.Records, Noise: rep.Noise, BadLines: rep.BadTotal,
		}, nil, nil
	}
	ev, st, serr := core.ExtractEventsParallel(bytes.NewReader(data), pcfg.Workers)
	if serr != nil {
		return nil, BatchReport{}, nil, serr
	}
	return ev, BatchReport{
		Lines: st.Lines, XIDLines: st.XIDLines, Noise: st.Skipped, BadLines: st.Malformed,
	}, nil, nil
}

// tableDrift is the L1 distance of per-group per-period Table I counts
// between the damaged and clean runs, normalized by the clean total.
func tableDrift(damaged, clean *core.Results) float64 {
	counts := func(r *core.Results) map[xid.Group][2]int {
		out := make(map[xid.Group][2]int, len(r.TableI))
		for _, row := range r.TableI {
			out[row.Group] = [2]int{row.PreOp.Count, row.Op.Count}
		}
		return out
	}
	d, c := counts(damaged), counts(clean)
	for g := range d {
		if _, ok := c[g]; !ok {
			c[g] = [2]int{}
		}
	}
	var diff, total int
	for g, cc := range c {
		dc := d[g]
		for p := 0; p < 2; p++ {
			delta := dc[p] - cc[p]
			if delta < 0 {
				delta = -delta
			}
			diff += delta
			total += cc[p]
		}
	}
	if total == 0 {
		if diff == 0 {
			return 0
		}
		return 1
	}
	return float64(diff) / float64(total)
}

// renderTables renders the three table documents from a batch Results the
// way the streaming snapshot's text path does — the shared report renderers
// — so a stream run and a batch run are byte-comparable. The xidstat doc
// carries Table I only: the scan-summary header line is Stage-I accounting,
// whose taxonomy legitimately differs between lenient batch ingest and the
// stream's per-line classification.
func renderTables(res *core.Results, downtimes []cluster.NodeDowntime, pcfg core.PipelineConfig) (map[string]string, error) {
	out := make(map[string]string, 3)
	var b strings.Builder
	if err := report.WriteTableI(&b, res); err != nil {
		return nil, err
	}
	out["xidstat"] = b.String()

	b.Reset()
	if err := report.WriteTableII(&b, res); err != nil {
		return nil, err
	}
	fmt.Fprintln(&b)
	if err := report.WriteTableIII(&b, res); err != nil {
		return nil, err
	}
	out["jobimpact"] = b.String()

	b.Reset()
	downByNode := make(map[string]float64, len(downtimes))
	for _, d := range downtimes {
		downByNode[d.Node] += d.Duration().Hours()
	}
	full := stats.Period{Name: "characterization", Start: pcfg.PreOp.Start, End: pcfg.Op.End}
	errorCount := res.PreSummary.TotalExclOutliers + res.OpSummary.TotalExclOutliers
	if err := report.WriteAvailability(&b, res.Avail, downByNode, full, errorCount > 0); err != nil {
		return nil, err
	}
	out["availability"] = b.String()
	return out, nil
}

// Run executes a compiled campaign end to end: simulate, damage the record,
// analyze through the batch pipeline, compare against the clean run, replay
// through the streaming engine under chaos, and evaluate the assertions.
func Run(c *Compiled, opts Options) (*Report, error) {
	sc := c.Scenario
	reg := obs.New()
	ccfg := c.Cluster
	ccfg.Obs = reg
	sim, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	var raw bytes.Buffer
	writer, err := syslog.NewWriter(&raw, syslog.DefaultWriterConfig(), ccfg.Seed)
	if err != nil {
		return nil, err
	}
	sim.SetEventSink(func(ev xid.Event) error {
		_, werr := writer.WriteEvent(ev)
		return werr
	})
	truth, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if err := writer.Flush(); err != nil {
		return nil, err
	}

	scale := sc.Scale
	if scale == 0 {
		scale = DefaultScale
	}
	rep := &Report{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        c.Seed,
		Profile:     sc.Profile,
		Scale:       scale,
		Fleet: FleetReport{
			Nodes4: ccfg.Nodes4, Nodes8: ccfg.Nodes8,
			GPUs:         4*ccfg.Nodes4 + 8*ccfg.Nodes8,
			ChronicNodes: ccfg.ChronicNodes,
		},
		Op: PeriodReport{Start: ccfg.Op.Start, End: ccfg.Op.End},
		Sim: SimReport{
			RawLogLines:   writer.Lines(),
			TruthEvents:   len(truth.Events),
			Jobs:          len(truth.Jobs),
			Downtimes:     len(truth.Downtimes),
			ServiceEvents: truth.ServiceEvents,
		},
	}

	// Phase 2: damage the record.
	cleanLog := raw.Bytes()
	damaged, droppedLines := applyOutages(cleanLog, c.Outages)
	var fuzzRep *logfuzz.Report
	if c.Corrupt != nil {
		fc := *c.Corrupt
		fc.Parses = parsesHook
		damaged, fuzzRep, err = logfuzz.Corrupt(damaged, fc)
		if err != nil {
			return nil, err
		}
	}
	damagePresent := len(c.Outages) > 0 || c.Corrupt != nil
	if damagePresent {
		d := &DamageReport{
			OutageWindows:      len(c.Outages),
			OutageDroppedLines: droppedLines,
		}
		if fuzzRep != nil {
			d.CorruptTouched = len(fuzzRep.Touched)
			d.CorruptInserted = fuzzRep.Inserted
			byOp := make(map[string]int, len(fuzzRep.ByOp))
			for op, n := range fuzzRep.ByOp {
				if n > 0 {
					byOp[op.String()] = n
				}
			}
			d.CorruptByOp = sortedOps(byOp)
		}
		rep.Damage = d
	}

	// Phase 3: batch analysis of the damaged log.
	pcfg := c.Pipeline
	pcfg.Workers = opts.Workers
	events, stage1, budgetErr, err := extractBatch(damaged, pcfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: batch extract: %w", sc.Name, err)
	}
	if budgetErr != nil {
		rep.BudgetExhausted = true
		rep.BudgetError = budgetErr.Error()
		rep.Obs = simSeries(reg)
		rep.evaluate(sc)
		return rep, nil
	}
	repairs := cluster.Durations(truth.Downtimes)
	res, err := core.Analyze(events, truth.Jobs, repairs, truth.CPU, pcfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: batch analyze: %w", sc.Name, err)
	}
	stage1.RawEvents = res.RawEvents
	stage1.CoalescedEvents = res.CoalescedEvents
	stage1.PreOpErrors = res.PreSummary.Total
	stage1.OpErrors = res.OpSummary.Total
	stage1.Availability = res.Avail.Availability
	stage1.MTTRHours = res.Avail.MTTRHours
	stage1.LostNodeHours = res.Avail.LostNodeHours
	rep.Batch = &stage1

	// Clean-run reference for survival and drift. Without damage the run is
	// its own reference (surviving 1, drift 0) and the second pass is
	// skipped.
	cleanRes := res
	if damagePresent {
		cleanEvents, _, serr := core.ExtractEventsParallel(bytes.NewReader(cleanLog), pcfg.Workers)
		if serr != nil {
			return nil, fmt.Errorf("scenario %s: clean extract: %w", sc.Name, serr)
		}
		cleanRes, err = core.Analyze(cleanEvents, truth.Jobs, repairs, truth.CPU, pcfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: clean analyze: %w", sc.Name, err)
		}
	}
	surviving := 1.0
	if cleanRes.CoalescedEvents > 0 {
		surviving = float64(res.CoalescedEvents) / float64(cleanRes.CoalescedEvents)
	}
	rep.Metrics = &MetricsReport{
		CleanCoalescedEvents: cleanRes.CoalescedEvents,
		SurvivingFraction:    surviving,
		TableDrift:           tableDrift(res, cleanRes),
	}

	// Per-event outcomes: coalesced records on the target device inside the
	// burst window (plus one coalescing window of slack).
	coalesced, err := coalesce.Events(events, pcfg.CoalesceWindow)
	if err != nil {
		return nil, err
	}
	for _, p := range c.Planned {
		hi := p.End.Add(pcfg.CoalesceWindow)
		observed := 0
		for _, ev := range coalesced {
			if ev.Node != p.Node || ev.Time.Before(p.Start) || ev.Time.After(hi) {
				continue
			}
			if p.GPU >= 0 && ev.GPU != p.GPU {
				continue
			}
			observed++
		}
		rep.Events = append(rep.Events, EventOutcome{PlannedEvent: p, Observed: observed})
	}

	// Phase 4: streaming replay under chaos.
	if c.Replay != nil {
		batchDocs, derr := renderTables(res, truth.Downtimes, pcfg)
		if derr != nil {
			return nil, derr
		}
		rep.Replays, err = runReplays(c, pcfg, truth, damaged, batchDocs, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: replay: %w", sc.Name, err)
		}
	}

	rep.Obs = simSeries(reg)
	rep.evaluate(sc)
	return rep, nil
}

// simSeries filters the registry snapshot down to the worker-invariant
// simulation series: sim.* counters and gauges only. Stage spans and intern
// statistics carry wall time and scheduling artifacts, which would break
// report byte-reproducibility across worker counts.
func simSeries(reg *obs.Registry) map[string]int64 {
	snap := reg.Snapshot()
	out := make(map[string]int64)
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "sim.") {
			out[k] = v
		}
	}
	for k, v := range snap.Gauges {
		if strings.HasPrefix(k, "sim.") {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
