package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"90m", 90 * time.Minute},
		{"17d", 17 * 24 * time.Hour},
		{"1d12h", 36 * time.Hour},
		{"0.5d", 12 * time.Hour},
		{"30s", 30 * time.Second},
		{"41d12h", 41*24*time.Hour + 12*time.Hour},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "d", "12", "5x", "1dd", "--3d"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func minimal() string {
	return `{"name": "t", "seed": 1, "profile": "a100", "assert": {}}`
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"name": "t", "seed": 1, "profile": "a100", "asserts": {}}`,
		"missing name":      `{"seed": 1, "profile": "a100"}`,
		"bad profile":       `{"name": "t", "profile": "v100"}`,
		"bad background":    `{"name": "t", "profile": "a100", "background": "noisy"}`,
		"bad kind":          `{"name": "t", "profile": "a100", "events": [{"at": "1d", "kind": "xyz", "count": 1}]}`,
		"zero count":        `{"name": "t", "profile": "a100", "events": [{"at": "1d", "kind": "mmu", "count": 0}]}`,
		"zone sans zones":   `{"name": "t", "profile": "a100", "events": [{"at": "1d", "kind": "mmu", "count": 1, "zone": 1}]}`,
		"node plus zone":    `{"name": "t", "profile": "a100", "events": [{"at": "1d", "kind": "mmu", "count": 1, "node": 1, "zone": 0, "zones": 2}]}`,
		"zone out of range": `{"name": "t", "profile": "a100", "events": [{"at": "1d", "kind": "mmu", "count": 1, "zone": 2, "zones": 2}]}`,
		"bad corruption op": `{"name": "t", "profile": "a100", "corruption": {"rate": 0.1, "ops": ["melt"]}}`,
		"corruption rate":   `{"name": "t", "profile": "a100", "corruption": {"rate": 1.5}}`,
		"zero-node fleet":   `{"name": "t", "profile": "a100", "fleet": {"nodes": 0}}`,
		"bad template":      `{"name": "t", "profile": "a100", "fleet": {"nodes": 4, "templates": [{"gpus": 6, "weight": 1}]}}`,
		"outage no window":  `{"name": "t", "profile": "a100", "outages": [{"start": "1d", "duration": "0s"}]}`,
		"nodes plus groups": `{"name": "t", "profile": "a100", "outages": [{"start": "1d", "duration": "1d", "nodes": ["gpub001"], "groups": 2}]}`,
		"rotate plus kill":  `{"name": "t", "profile": "a100", "replay": {"rotateEvery": 10, "killEvery": 10}}`,
		"budget sans limit": `{"name": "t", "profile": "a100", "assert": {"expectBudgetExhausted": true}}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	if _, err := Parse([]byte(minimal())); err != nil {
		t.Fatalf("minimal document rejected: %v", err)
	}
}

func TestFleetCounts(t *testing.T) {
	cases := []struct {
		fleet  Fleet
		n4, n8 int
	}{
		{Fleet{Nodes: 10}, 10, 0},
		{Fleet{Nodes: 10, Templates: []Template{{GPUs: 4, Weight: 1}, {GPUs: 8, Weight: 1}}}, 5, 5},
		{Fleet{Nodes: 9, Templates: []Template{{GPUs: 4, Weight: 2}, {GPUs: 8, Weight: 1}}}, 6, 3},
		// Largest remainder: 7*3/4 = 5.25 four-way, 1.75 eight-way -> the
		// eight-way template wins the leftover node.
		{Fleet{Nodes: 7, Templates: []Template{{GPUs: 4, Weight: 3}, {GPUs: 8, Weight: 1}}}, 5, 2},
		{Fleet{Nodes: 3, Templates: []Template{{GPUs: 8, Weight: 1}}}, 0, 3},
	}
	for i, c := range cases {
		n4, n8 := fleetCounts(&c.fleet)
		if n4 != c.n4 || n8 != c.n8 {
			t.Errorf("case %d: got (%d, %d), want (%d, %d)", i, n4, n8, c.n4, c.n8)
		}
		if n4+n8 != c.fleet.Nodes {
			t.Errorf("case %d: apportionment lost nodes: %d + %d != %d", i, n4, n8, c.fleet.Nodes)
		}
	}
}

func TestCompileResolvesPlacements(t *testing.T) {
	doc := `{
		"name": "placements", "seed": 5, "profile": "a100", "background": "none",
		"horizon": "20d",
		"events": [
			{"at": "1d", "kind": "gsp", "count": 3, "node": 7, "gpu": 2},
			{"at": "2d", "kind": "mmu", "count": 2, "zone": 3, "zones": 4}
		],
		"cascades": [
			{"start": "5d", "kind": "mmu", "zones": 2, "stagger": "1d", "count": 4, "over": "1h"}
		],
		"assert": {}
	}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sc, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Planned) != 4 || len(c.Cluster.Inject) != 4 {
		t.Fatalf("planned %d, injected %d, want 4 each", len(c.Planned), len(c.Cluster.Inject))
	}
	if p := c.Planned[0]; p.NodeIdx != 7 || p.GPU != 2 || p.Node != "gpub008" {
		t.Fatalf("pinned event resolved to %+v", p)
	}
	// Zone 3 of 4 over 106 nodes is indexes [79, 106).
	if p := c.Planned[1]; p.NodeIdx < 79 || p.NodeIdx >= 106 {
		t.Fatalf("zone event landed on node %d, want [79, 106)", p.NodeIdx)
	}
	// Cascade zones are contiguous halves, staggered a day apart.
	z0, z1 := c.Planned[2], c.Planned[3]
	if z0.NodeIdx >= 53 || z1.NodeIdx < 53 {
		t.Fatalf("cascade zones landed on nodes %d, %d", z0.NodeIdx, z1.NodeIdx)
	}
	if got := z1.Start.Sub(z0.Start); got != 24*time.Hour {
		t.Fatalf("cascade stagger = %v", got)
	}
	// Same (scenario, seed) always compiles identically.
	c2, err := Compile(sc, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Planned {
		if c.Planned[i] != c2.Planned[i] {
			t.Fatalf("compile not deterministic at event %d", i)
		}
	}
}

func TestCompileRejectsOutOfWindowEvent(t *testing.T) {
	doc := `{
		"name": "late", "seed": 1, "profile": "a100", "background": "none",
		"horizon": "10d",
		"events": [{"at": "9d", "kind": "mmu", "count": 5, "over": "2d"}],
		"assert": {}
	}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sc, sc.Seed); err == nil {
		t.Fatal("event overrunning the horizon accepted")
	}
}

func TestApplyOutages(t *testing.T) {
	mk := func(ts, node string) string {
		return ts + " " + node + " kernel: NVRM: Xid (PCI:0000:07:00): 31, pid=1, name=x, detail"
	}
	lines := []string{
		mk("2022-10-05T00:00:00.000000Z", "gpub001"),
		mk("2022-10-05T01:00:00.000000Z", "gpub002"),
		mk("2022-10-06T00:00:00.000000Z", "gpub001"),
	}
	raw := []byte(strings.Join(lines, "\n") + "\n")
	start := time.Date(2022, 10, 5, 0, 0, 0, 0, time.UTC)
	out, dropped := applyOutages(raw, []OutageWindow{{
		Start: start, End: start.Add(12 * time.Hour),
		Nodes: map[string]bool{"gpub001": true}, NodeCount: 1,
	}})
	if dropped != 1 {
		t.Fatalf("dropped %d lines, want 1 (gpub001 inside the window)", dropped)
	}
	if !bytes.Contains(out, []byte("gpub002")) || !bytes.Contains(out, []byte("2022-10-06")) {
		t.Fatal("outage dropped a surviving line")
	}
	// A whole-fleet window (nil node set) takes both in-window lines.
	_, dropped = applyOutages(raw, []OutageWindow{{Start: start, End: start.Add(12 * time.Hour)}})
	if dropped != 2 {
		t.Fatalf("whole-fleet outage dropped %d, want 2", dropped)
	}
}

// libraryPath locates a committed scenarios/ file from the package dir.
func libraryPath(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "scenarios", name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("library scenario missing: %v", err)
	}
	return path
}

func runLibrary(t *testing.T, name string, workers int) ([]byte, *Report) {
	t.Helper()
	sc, err := Load(libraryPath(t, name))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sc, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, Options{Workers: workers, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data, rep
}

// TestReportDeterministicAcrossWorkers is the harness's core reproducibility
// property: the same scenario file and seed produce a byte-identical JSON
// report at any pipeline worker count — including a full kill/restart
// chaos replay.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	base, rep := runLibrary(t, "gsp-storm.json", 1)
	if !rep.Pass {
		t.Fatal("gsp-storm must pass")
	}
	for _, workers := range []int{4, 16} {
		got, _ := runLibrary(t, "gsp-storm.json", workers)
		if !bytes.Equal(base, got) {
			t.Fatalf("report differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestGoldenReport pins one library campaign's full JSON report. A diff here
// means scenario semantics changed: regenerate with
//
//	go run ./cmd/stress -scenario scenarios/gsp-storm.json -quiet \
//	    -json internal/scenario/testdata/gsp-storm.report.json
//
// and review the diff like any contract change.
func TestGoldenReport(t *testing.T) {
	got, _ := runLibrary(t, "gsp-storm.json", 1)
	want, err := os.ReadFile(filepath.Join("testdata", "gsp-storm.report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gsp-storm report diverged from golden (len %d vs %d); see regeneration note in this test", len(got), len(want))
	}
}

// TestLibraryScenariosPass keeps every committed library campaign green:
// each must compile, run, and satisfy its own assertions.
func TestLibraryScenariosPass(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			_, rep := runLibrary(t, e.Name(), 0)
			if !rep.Pass {
				data, _ := rep.Marshal()
				t.Fatalf("library scenario failed its assertions:\n%s", data)
			}
		})
	}
	if ran < 6 {
		t.Fatalf("expected at least 6 library scenarios, found %d", ran)
	}
}

// TestBudgetExhaustionPath exercises the refusal path end to end: the
// budget campaign must stop at Stage I, skip batch statistics and replay,
// and still pass via its ingest-budget assertion.
func TestBudgetExhaustionPath(t *testing.T) {
	_, rep := runLibrary(t, "corrupt-ingest-budget.json", 1)
	if !rep.BudgetExhausted {
		t.Fatal("budget did not trip")
	}
	if rep.Batch != nil || rep.Metrics != nil || len(rep.Replays) != 0 {
		t.Fatal("analysis phases should be skipped after a budget refusal")
	}
	if !rep.Pass {
		t.Fatal("expected budget exhaustion should pass")
	}
}

// TestChaosActuallyFires guards the chaos loop against silently degrading
// into a plain replay: the kill cadence must produce kills, checkpoints,
// and absorbed redelivered duplicates.
func TestChaosActuallyFires(t *testing.T) {
	_, rep := runLibrary(t, "gsp-storm.json", 1)
	if len(rep.Replays) != 1 {
		t.Fatalf("replays = %d, want 1", len(rep.Replays))
	}
	r := rep.Replays[0]
	if r.Kills == 0 || r.Checkpoints == 0 || r.Dups == 0 {
		t.Fatalf("chaos did not fire: %+v", r)
	}
	if !r.Equivalent {
		t.Fatalf("chaos replay diverged at %s", r.Mismatch)
	}
}

// TestRotationReplay covers the file-rotation chaos mode through the
// library's Hopper flap campaign.
func TestRotationReplay(t *testing.T) {
	_, rep := runLibrary(t, "nvlink-flap.json", 1)
	if len(rep.Replays) != 1 || rep.Replays[0].Mode != "rotate" {
		t.Fatalf("replays = %+v, want one rotate outcome", rep.Replays)
	}
	if rep.Replays[0].Rotations == 0 {
		t.Fatal("rotation never happened")
	}
	if !rep.Replays[0].Equivalent {
		t.Fatalf("rotation replay diverged at %s", rep.Replays[0].Mismatch)
	}
}

// TestSeedOverrideChangesOutcome checks the seed actually steers the
// campaign: different seeds must place the unpinned events differently.
func TestSeedOverrideChangesOutcome(t *testing.T) {
	doc := `{
		"name": "seeded", "seed": 1, "profile": "a100", "background": "none",
		"horizon": "10d",
		"events": [{"at": "1d", "kind": "mmu", "count": 2}],
		"assert": {}
	}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Planned[0].NodeIdx == b.Planned[0].NodeIdx {
		t.Skip("seeds happened to collide on one node; statistically fine")
	}
}
