package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Report is a campaign's full outcome: what was injected, what the damage
// did, what the pipeline recovered, how the replays behaved, and whether the
// scenario's contract held. It is deterministic — no wall-clock, no worker
// count, no absolute paths — so equal (scenario, seed) runs marshal to
// byte-identical JSON at any parallelism.
type Report struct {
	// Scenario echoes the campaign name.
	Scenario string `json:"scenario"`
	// Description echoes the campaign description.
	Description string `json:"description,omitempty"`
	// Seed is the effective seed the campaign ran under.
	Seed uint64 `json:"seed"`
	// Profile is the calibration profile ("a100" or "hopper").
	Profile string `json:"profile"`
	// Scale is the effective calibration scale.
	Scale float64 `json:"scale"`
	// Fleet records the compiled node layout.
	Fleet FleetReport `json:"fleet"`
	// Op bounds the (possibly horizon-truncated) operational period.
	Op PeriodReport `json:"op"`
	// Sim summarizes the simulation ground truth.
	Sim SimReport `json:"sim"`
	// Damage summarizes outage and corruption injection; nil when the
	// campaign damages nothing.
	Damage *DamageReport `json:"damage,omitempty"`
	// Batch is the damaged-log batch analysis; nil when the ingest budget
	// tripped (see BudgetExhausted).
	Batch *BatchReport `json:"batch,omitempty"`
	// BudgetExhausted records that lenient Stage I refused the log.
	BudgetExhausted bool `json:"budgetExhausted,omitempty"`
	// BudgetError is the refusal's message.
	BudgetError string `json:"budgetError,omitempty"`
	// Metrics are the clean-run comparisons; nil alongside Batch.
	Metrics *MetricsReport `json:"metrics,omitempty"`
	// Events are the per-injection outcomes, in stanza order.
	Events []EventOutcome `json:"events,omitempty"`
	// Replays are the streaming-replay outcomes, one per cadence.
	Replays []ReplayOutcome `json:"replays,omitempty"`
	// Obs is the worker-invariant simulation metric snapshot (sim.* series
	// only; pipeline spans carry wall time and are excluded by design).
	Obs map[string]int64 `json:"obs,omitempty"`
	// Assertions are the evaluated contract clauses.
	Assertions []AssertionResult `json:"assertions"`
	// Pass is the conjunction of the assertions.
	Pass bool `json:"pass"`
}

// FleetReport records the compiled node layout.
type FleetReport struct {
	// Nodes4 counts 4-way nodes.
	Nodes4 int `json:"nodes4"`
	// Nodes8 counts 8-way nodes.
	Nodes8 int `json:"nodes8"`
	// GPUs is the fleet device total.
	GPUs int `json:"gpus"`
	// ChronicNodes sizes the error-prone set.
	ChronicNodes int `json:"chronicNodes"`
}

// PeriodReport bounds a period in the report.
type PeriodReport struct {
	// Start is the period's inclusive lower bound.
	Start time.Time `json:"start"`
	// End is the period's exclusive upper bound.
	End time.Time `json:"end"`
}

// SimReport summarizes the simulation ground truth.
type SimReport struct {
	// RawLogLines is how many raw lines the syslog writer emitted.
	RawLogLines int `json:"rawLogLines"`
	// TruthEvents is the simulator's own (pre-duplication) event count.
	TruthEvents int `json:"truthEvents"`
	// Jobs counts scheduled jobs in the workload ledger.
	Jobs int `json:"jobs"`
	// Downtimes counts node downtime intervals.
	Downtimes int `json:"downtimes"`
	// ServiceEvents counts service-action ledger entries.
	ServiceEvents int `json:"serviceEvents"`
}

// DamageReport summarizes what the damage phase did to the record.
type DamageReport struct {
	// OutageWindows is how many resolved windows blanked collection.
	OutageWindows int `json:"outageWindows,omitempty"`
	// OutageDroppedLines is how many lines the outages erased.
	OutageDroppedLines int `json:"outageDroppedLines,omitempty"`
	// CorruptTouched counts lines logfuzz mutated in place.
	CorruptTouched int `json:"corruptTouched,omitempty"`
	// CorruptInserted counts lines logfuzz added from thin air.
	CorruptInserted int `json:"corruptInserted,omitempty"`
	// CorruptByOp breaks the mutations down by operator name.
	CorruptByOp map[string]int `json:"corruptByOp,omitempty"`
}

// BatchReport is the damaged-log batch analysis summary.
type BatchReport struct {
	// Lines is Stage I's scanned-line total.
	Lines int `json:"lines"`
	// XIDLines counts lines recognized as XID records.
	XIDLines int `json:"xidLines"`
	// Noise counts well-formed non-XID lines.
	Noise int `json:"noise"`
	// BadLines counts lines lenient ingest skipped (zero on strict runs by
	// definition — a strict run fails instead of skipping).
	BadLines int `json:"badLines"`
	// RawEvents counts Stage II input records.
	RawEvents int `json:"rawEvents"`
	// CoalescedEvents counts Stage II output records.
	CoalescedEvents int `json:"coalescedEvents"`
	// PreOpErrors is the pre-operational Table I error total.
	PreOpErrors int `json:"preOpErrors"`
	// OpErrors is the operational Table I error total.
	OpErrors int `json:"opErrors"`
	// Availability is the §V-C fleet availability in [0, 1].
	Availability float64 `json:"availability"`
	// MTTRHours is the §V-C mean time to repair, in hours.
	MTTRHours float64 `json:"mttrHours"`
	// LostNodeHours is the §V-C lost node-hour total.
	LostNodeHours float64 `json:"lostNodeHours"`
}

// MetricsReport compares the damaged run against the clean reference run.
type MetricsReport struct {
	// CleanCoalescedEvents is the damage-free run's record count.
	CleanCoalescedEvents int `json:"cleanCoalescedEvents"`
	// SurvivingFraction is damaged/clean coalesced records.
	SurvivingFraction float64 `json:"survivingFraction"`
	// TableDrift is the L1 distance of per-group per-period Table I counts
	// over the clean total.
	TableDrift float64 `json:"tableDrift"`
}

// EventOutcome pairs one planned injection with what the pipeline saw.
type EventOutcome struct {
	PlannedEvent
	// Observed counts coalesced records on the target node (and pinned
	// device, when set) inside the burst window plus one coalescing window
	// of slack. Under a calibrated background the count includes unrelated
	// background errors that happen to share the node and window.
	Observed int `json:"observed"`
}

// ReplayOutcome is one streaming replay's result.
type ReplayOutcome struct {
	// Mode is "kill", "rotate", or "plain".
	Mode string `json:"mode"`
	// KillEvery is the kill cadence in lines (kill mode only).
	KillEvery int `json:"killEvery,omitempty"`
	// Lines is how many unique lines the engine consumed.
	Lines int64 `json:"lines"`
	// Dups is how many redelivered lines the engine absorbed as duplicates.
	Dups int64 `json:"dups"`
	// Kills counts engine kill/restart cycles (kill mode only).
	Kills int `json:"kills,omitempty"`
	// Rotations counts mid-stream file rotations (rotate mode only).
	Rotations int `json:"rotations,omitempty"`
	// Checkpoints counts checkpoint captures (each JSON-roundtripped).
	Checkpoints int `json:"checkpoints,omitempty"`
	// Quarantined counts late events the engine refused to backfill.
	Quarantined int64 `json:"quarantined"`
	// SealedEvents is the engine's final kept-record count.
	SealedEvents int `json:"sealedEvents"`
	// Equivalent is true when every table matched both references
	// byte-for-byte.
	Equivalent bool `json:"equivalent"`
	// Mismatch names the first divergent table when Equivalent is false.
	Mismatch string `json:"mismatch,omitempty"`
}

// AssertionResult is one evaluated contract clause.
type AssertionResult struct {
	// Name identifies the clause.
	Name string `json:"name"`
	// Ok is the verdict.
	Ok bool `json:"ok"`
	// Got renders the observed value.
	Got string `json:"got"`
	// Want renders the threshold the clause compared against.
	Want string `json:"want"`
}

// MarshalJSON is deliberately not customized; Marshal renders the canonical
// byte form all reproducibility checks compare.

// Marshal renders the report's canonical JSON byte form: indented, sorted
// map keys (encoding/json's default), newline-terminated.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Summary writes the human-readable campaign digest.
func (r *Report) Summary(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%s: scenario %q (profile %s, seed %d, scale %g)\n",
		status, r.Scenario, r.Profile, r.Seed, r.Scale)
	fmt.Fprintf(w, "  fleet: %d nodes (%d four-way, %d eight-way), %d GPUs\n",
		r.Fleet.Nodes4+r.Fleet.Nodes8, r.Fleet.Nodes4, r.Fleet.Nodes8, r.Fleet.GPUs)
	fmt.Fprintf(w, "  sim: %d truth events -> %d raw log lines, %d jobs, %d downtimes\n",
		r.Sim.TruthEvents, r.Sim.RawLogLines, r.Sim.Jobs, r.Sim.Downtimes)
	if d := r.Damage; d != nil {
		fmt.Fprintf(w, "  damage: %d outage windows dropped %d lines; corruption touched %d, inserted %d\n",
			d.OutageWindows, d.OutageDroppedLines, d.CorruptTouched, d.CorruptInserted)
	}
	if r.BudgetExhausted {
		fmt.Fprintf(w, "  ingest: budget exhausted: %s\n", r.BudgetError)
	}
	if b := r.Batch; b != nil {
		fmt.Fprintf(w, "  batch: %d lines -> %d raw events -> %d coalesced (pre-op %d, op %d), availability %.4f\n",
			b.Lines, b.RawEvents, b.CoalescedEvents, b.PreOpErrors, b.OpErrors, b.Availability)
	}
	if m := r.Metrics; m != nil {
		fmt.Fprintf(w, "  vs clean: surviving %.4f, table drift %.4f\n",
			m.SurvivingFraction, m.TableDrift)
	}
	for _, ev := range r.Events {
		fmt.Fprintf(w, "  event %s: %s x%d on %s", ev.Source, ev.Kind, ev.Count, ev.Node)
		if ev.GPU >= 0 {
			fmt.Fprintf(w, " gpu %d", ev.GPU)
		}
		fmt.Fprintf(w, " -> %d observed\n", ev.Observed)
	}
	for _, rp := range r.Replays {
		verdict := "byte-identical"
		if !rp.Equivalent {
			verdict = "DIVERGED at " + rp.Mismatch
		}
		fmt.Fprintf(w, "  replay %s", rp.Mode)
		if rp.KillEvery > 0 {
			fmt.Fprintf(w, " (kill every %d)", rp.KillEvery)
		}
		fmt.Fprintf(w, ": %d lines, %d dups, %d kills, %d rotations, %d quarantined -> %s\n",
			rp.Lines, rp.Dups, rp.Kills, rp.Rotations, rp.Quarantined, verdict)
	}
	for _, a := range r.Assertions {
		mark := "ok"
		if !a.Ok {
			mark = "FAILED"
		}
		fmt.Fprintf(w, "  assert %-22s %-6s got %s, want %s\n", a.Name, mark, a.Got, a.Want)
	}
	_, err := fmt.Fprintf(w, "  %s\n", status)
	return err
}

// sortedOps renders a logfuzz per-op count map with string keys for stable
// JSON.
func sortedOps(byOp map[string]int) map[string]int {
	if len(byOp) == 0 {
		return nil
	}
	return byOp
}

// evaluate runs the scenario's assertion clauses over the finished report
// and fills Assertions and Pass. Clauses whose subject was skipped (e.g.
// drift after an expected budget refusal) are not evaluated.
func (r *Report) evaluate(sc *Scenario) {
	a := sc.Assert
	add := func(name string, ok bool, got, want string) {
		r.Assertions = append(r.Assertions, AssertionResult{Name: name, Ok: ok, Got: got, Want: want})
	}

	budgeted := sc.Ingest != nil && (sc.Ingest.MaxBadLines > 0 || sc.Ingest.MaxBadFrac > 0)
	if a.ExpectBudgetExhausted || budgeted {
		want := "not exhausted"
		if a.ExpectBudgetExhausted {
			want = "exhausted"
		}
		got := "not exhausted"
		if r.BudgetExhausted {
			got = "exhausted"
		}
		add("ingest-budget", r.BudgetExhausted == a.ExpectBudgetExhausted, got, want)
	}

	if m := r.Metrics; m != nil {
		if t := a.MinSurvivingFraction; t != nil {
			add("min-surviving-fraction", m.SurvivingFraction >= *t,
				fmt.Sprintf("%.4f", m.SurvivingFraction), fmt.Sprintf(">= %.4f", *t))
		}
		if t := a.MaxTableDrift; t != nil {
			add("max-table-drift", m.TableDrift <= *t,
				fmt.Sprintf("%.4f", m.TableDrift), fmt.Sprintf("<= %.4f", *t))
		}
	}
	if b := r.Batch; b != nil {
		if t := a.MinAvailability; t != nil {
			add("min-availability", b.Availability >= *t,
				fmt.Sprintf("%.4f", b.Availability), fmt.Sprintf(">= %.4f", *t))
		}
		if t := a.MaxBadLines; t != nil {
			add("max-bad-lines", b.BadLines <= *t,
				fmt.Sprintf("%d", b.BadLines), fmt.Sprintf("<= %d", *t))
		}
		if t := a.MinCoalesced; t != nil {
			add("min-coalesced", b.CoalescedEvents >= *t,
				fmt.Sprintf("%d", b.CoalescedEvents), fmt.Sprintf(">= %d", *t))
		}
	}
	if len(r.Replays) > 0 {
		if t := a.MaxQuarantined; t != nil {
			var worst int64
			for _, rp := range r.Replays {
				if rp.Quarantined > worst {
					worst = rp.Quarantined
				}
			}
			add("max-quarantined", worst <= *t,
				fmt.Sprintf("%d", worst), fmt.Sprintf("<= %d", *t))
		}
		if a.StreamEquivalence == nil || *a.StreamEquivalence {
			diverged := []string{}
			for _, rp := range r.Replays {
				if !rp.Equivalent {
					diverged = append(diverged, fmt.Sprintf("%s@%s", rp.Mode, rp.Mismatch))
				}
			}
			sort.Strings(diverged)
			got := "byte-identical"
			if len(diverged) > 0 {
				got = strings.Join(diverged, ",")
			}
			add("stream-equivalence", len(diverged) == 0, got, "byte-identical")
		}
	}

	r.Pass = true
	for _, res := range r.Assertions {
		if !res.Ok {
			r.Pass = false
		}
	}
}
