package scenario

import (
	"fmt"
	"time"

	"gpuresilience/internal/calib"
	"gpuresilience/internal/cluster"
	"gpuresilience/internal/core"
	"gpuresilience/internal/faults"
	"gpuresilience/internal/logfuzz"
	"gpuresilience/internal/randx"
	"gpuresilience/internal/stream"
)

// DefaultScale is the calibration scale used when a scenario omits one:
// half a percent of Delta keeps a campaign in CI territory.
const DefaultScale = 0.005

// PlannedEvent is one compiled injection with its resolved placement — the
// report's per-event ledger entry.
type PlannedEvent struct {
	// Source locates the scenario stanza ("events[0]", "cascades[1]/zone/2").
	Source string `json:"source"`
	// Kind is the fault process name.
	Kind string `json:"kind"`
	// Node is the resolved node name.
	Node string `json:"node"`
	// NodeIdx is the resolved node's fleet index.
	NodeIdx int `json:"nodeIdx"`
	// GPU is the pinned device index, or -1 when the simulator picks.
	GPU int `json:"gpu"`
	// Start is the burst window's lower bound.
	Start time.Time `json:"start"`
	// End is the burst window's upper bound.
	End time.Time `json:"end"`
	// Count is the number of injected error instants.
	Count int `json:"count"`
}

// OutageWindow is one resolved collector outage: lines from the node set
// timestamped inside [Start, End) vanish from the log record.
type OutageWindow struct {
	// Source locates the scenario stanza ("outages[0]/group/2").
	Source string `json:"source"`
	// Start is the blanked window's inclusive lower bound.
	Start time.Time `json:"start"`
	// End is the blanked window's exclusive upper bound.
	End time.Time `json:"end"`
	// Nodes is the affected node-name set; nil means the whole fleet.
	Nodes map[string]bool `json:"-"`
	// NodeCount is len(Nodes), or the fleet size for a whole-fleet outage.
	NodeCount int `json:"nodeCount"`
}

// Compiled is a scenario resolved against its calibration profile: the
// simulator configuration with injections attached, the pipeline settings,
// the damage plan, and the normalized replay plan.
type Compiled struct {
	// Scenario is the validated source document.
	Scenario *Scenario
	// Seed is the effective campaign seed (scenario's, or the CLI override).
	Seed uint64
	// Cluster is the ready-to-run simulation configuration.
	Cluster cluster.Config
	// Pipeline is the batch analysis configuration (Workers left zero; the
	// runner sets it).
	Pipeline core.PipelineConfig
	// Planned are the compiled injections, in stanza order.
	Planned []PlannedEvent
	// Outages are the resolved collector-outage windows.
	Outages []OutageWindow
	// Corrupt is the logfuzz configuration, nil when the scenario has no
	// corruption stanza. The runner attaches the Parses hook.
	Corrupt *logfuzz.Config
	// Replay is the normalized replay plan (defaults filled in), nil for
	// batch-only campaigns.
	Replay *Replay
}

// parseKind maps a scenario kind name onto the fault process enum.
func parseKind(name string) (faults.Kind, error) {
	for k := faults.KindMMU; k <= faults.KindSBE; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q", name)
}

// parseOps maps corruption op names onto the logfuzz repertoire; empty means
// all ops.
func parseOps(names []string) ([]logfuzz.Op, error) {
	if len(names) == 0 {
		return nil, nil
	}
	all := logfuzz.AllOps()
	out := make([]logfuzz.Op, 0, len(names))
	for _, n := range names {
		found := false
		for _, o := range all {
			if o.String() == n {
				out = append(out, o)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown corruption op %q", n)
		}
	}
	return out, nil
}

// fleetCounts resolves a fleet override into 4-way and 8-way node counts by
// largest-remainder apportionment over the template weights.
func fleetCounts(f *Fleet) (n4, n8 int) {
	if len(f.Templates) == 0 {
		return f.Nodes, 0
	}
	total := 0
	for _, t := range f.Templates {
		total += t.Weight
	}
	counts := make([]int, len(f.Templates))
	assigned := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(f.Templates))
	for i, t := range f.Templates {
		exact := float64(f.Nodes) * float64(t.Weight) / float64(total)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{i, exact - float64(counts[i])}
	}
	for assigned < f.Nodes {
		// Largest remainder wins each leftover node; ties break toward the
		// earlier template, keeping apportionment deterministic.
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	for i, t := range f.Templates {
		if t.GPUs == 8 {
			n8 += counts[i]
		} else {
			n4 += counts[i]
		}
	}
	return n4, n8
}

// nodeName renders the fleet naming scheme for a node index.
func nodeName(idx int) string { return fmt.Sprintf("gpub%03d", idx+1) }

// zoneRange returns zone z's contiguous node-index range [lo, hi) when the
// fleet splits into zones pieces.
func zoneRange(total, zones, z int) (lo, hi int) {
	return z * total / zones, (z + 1) * total / zones
}

// Compile resolves a validated scenario against its calibration profile.
// The seed argument is the effective campaign seed — normally sc.Seed, or
// the CLI override. Compilation itself consumes randomness only through
// streams derived from that seed, so equal (scenario, seed) pairs always
// compile to identical configurations.
func Compile(sc *Scenario, seed uint64) (*Compiled, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	scale := sc.Scale
	if scale == 0 {
		scale = DefaultScale
	}
	var base calib.Scenario
	switch sc.Profile {
	case "hopper":
		base = calib.NewHopperScenario(seed, scale)
	default:
		base = calib.NewScenario(seed, scale)
	}
	cfg := base.Cluster

	calibrated := sc.Background != "none"
	if !calibrated {
		cfg.PreOpFaults = nil
		cfg.OpFaults = nil
		cfg.FaultyGPU = nil
		cfg.HealthCheck = nil
	}
	if wantWorkload := sc.Workload; (wantWorkload != nil && !*wantWorkload) ||
		(wantWorkload == nil && !calibrated) {
		cfg.Workload = nil
	}

	if h := sc.Horizon.D(); h > 0 {
		end := cfg.Op.Start.Add(h)
		if !end.After(cfg.Op.Start) || end.After(cfg.Op.End) {
			return nil, fmt.Errorf("scenario %s: horizon %v outside the profile's operational period", sc.Name, h)
		}
		cfg.Op.End = end
		if cfg.Workload != nil {
			// The workload's job count is scale-determined, so truncating its
			// period compresses the same jobs into the shorter horizon and
			// utilization holds.
			cfg.Workload.Period = cfg.Op
		}
	}

	if f := sc.Fleet; f != nil {
		cfg.Nodes4, cfg.Nodes8 = fleetCounts(f)
		if f.ChronicNodes > 0 {
			cfg.ChronicNodes = f.ChronicNodes
		} else if cfg.ChronicNodes > f.Nodes {
			cfg.ChronicNodes = f.Nodes
		}
		if fg := cfg.FaultyGPU; fg != nil && fg.Node >= f.Nodes {
			// The calibrated defective device lives on gpub013; a smaller
			// fleet relocates it rather than dropping the scenario.
			fg.Node = f.Nodes - 1
		}
	}
	total := cfg.Nodes4 + cfg.Nodes8

	rng := randx.Derive(seed, "scenario/"+sc.Name)
	c := &Compiled{Scenario: sc, Seed: seed, Cluster: cfg}

	gpusAt := func(idx int) int {
		if idx < c.Cluster.Nodes4 {
			return 4
		}
		return 8
	}
	addEvent := func(source, kindName string, count int, start time.Time, over time.Duration,
		node, gpu int, erng *randx.Stream) error {
		kind, err := parseKind(kindName)
		if err != nil {
			return err
		}
		end := start.Add(over)
		if start.Before(c.Cluster.Op.Start) || end.After(c.Cluster.Op.End) {
			return fmt.Errorf("window [%v, %v] outside the operational period", start, end)
		}
		if node < 0 || node >= total {
			return fmt.Errorf("node %d out of the %d-node fleet", node, total)
		}
		if kind == faults.KindNVLink {
			if gpu >= 0 {
				return fmt.Errorf("nvlink leaves device choice to the fabric; drop the gpu field")
			}
		} else if gpu >= gpusAt(node) {
			return fmt.Errorf("gpu %d out of range on %d-way node %s", gpu, gpusAt(node), nodeName(node))
		}
		times := faults.BurstTimes(erng.Derive("times"), start, over, count)
		c.Cluster.Inject = append(c.Cluster.Inject, faults.Episode{
			Kind: kind, Node: node, GPU: gpu, Times: times,
		})
		c.Planned = append(c.Planned, PlannedEvent{
			Source: source, Kind: kindName, Node: nodeName(node), NodeIdx: node,
			GPU: gpu, Start: start, End: end, Count: count,
		})
		return nil
	}

	for i, ev := range sc.Events {
		source := fmt.Sprintf("events[%d]", i)
		erng := rng.Derive(source)
		node := -1
		switch {
		case ev.Node != nil:
			node = *ev.Node
		case ev.Zone != nil:
			lo, hi := zoneRange(total, ev.Zones, *ev.Zone)
			if lo == hi {
				return nil, fmt.Errorf("scenario %s: %s: zone %d of %d is empty on a %d-node fleet", sc.Name, source, *ev.Zone, ev.Zones, total)
			}
			node = lo + erng.Intn(hi-lo)
		default:
			node = erng.Intn(total)
		}
		gpu := -1
		if ev.GPU != nil {
			gpu = *ev.GPU
		}
		start := cfg.Op.Start.Add(ev.At.D())
		if err := addEvent(source, ev.Kind, ev.Count, start, ev.Over.D(), node, gpu, erng); err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", sc.Name, source, err)
		}
	}

	for i, ca := range sc.Cascades {
		if ca.Zones > total {
			return nil, fmt.Errorf("scenario %s: cascades[%d]: %d zones over a %d-node fleet", sc.Name, i, ca.Zones, total)
		}
		for z := 0; z < ca.Zones; z++ {
			source := fmt.Sprintf("cascades[%d]/zone/%d", i, z)
			erng := rng.Derive(source)
			lo, hi := zoneRange(total, ca.Zones, z)
			node := lo + erng.Intn(hi-lo)
			start := cfg.Op.Start.Add(ca.Start.D() + time.Duration(z)*ca.Stagger.D())
			if err := addEvent(source, ca.Kind, ca.Count, start, ca.Over.D(), node, -1, erng); err != nil {
				return nil, fmt.Errorf("scenario %s: %s: %w", sc.Name, source, err)
			}
		}
	}

	for i, sk := range sc.Skew {
		kind, err := parseKind(sk.Kind)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: skew[%d]: %w", sc.Name, i, err)
		}
		spec := faults.ProcessSpec{
			Kind: kind, Episodes: sk.Episodes, MeanSize: sk.MeanSize,
			MeanGap: sk.MeanGap.D(), ChronicFrac: sk.ChronicFrac,
		}
		if sk.Period == "pre" {
			c.Cluster.PreOpFaults = append(c.Cluster.PreOpFaults, spec)
		} else {
			c.Cluster.OpFaults = append(c.Cluster.OpFaults, spec)
		}
	}

	fleetNames := make(map[string]bool, total)
	for i := 0; i < total; i++ {
		fleetNames[nodeName(i)] = true
	}
	for i, o := range sc.Outages {
		base := cfg.Op.Start.Add(o.Start.D())
		switch {
		case o.Groups > 0:
			if o.Groups > total {
				return nil, fmt.Errorf("scenario %s: outages[%d]: %d groups over a %d-node fleet", sc.Name, i, o.Groups, total)
			}
			stride := o.Stride.D()
			if stride == 0 {
				stride = o.Duration.D()
			}
			for g := 0; g < o.Groups; g++ {
				lo, hi := zoneRange(total, o.Groups, g)
				nodes := make(map[string]bool, hi-lo)
				for n := lo; n < hi; n++ {
					nodes[nodeName(n)] = true
				}
				start := base.Add(time.Duration(g) * stride)
				c.Outages = append(c.Outages, OutageWindow{
					Source: fmt.Sprintf("outages[%d]/group/%d", i, g),
					Start:  start, End: start.Add(o.Duration.D()),
					Nodes: nodes, NodeCount: len(nodes),
				})
			}
		case len(o.Nodes) > 0:
			nodes := make(map[string]bool, len(o.Nodes))
			for _, n := range o.Nodes {
				if !fleetNames[n] {
					return nil, fmt.Errorf("scenario %s: outages[%d]: node %q not in the fleet", sc.Name, i, n)
				}
				nodes[n] = true
			}
			c.Outages = append(c.Outages, OutageWindow{
				Source: fmt.Sprintf("outages[%d]", i),
				Start:  base, End: base.Add(o.Duration.D()),
				Nodes: nodes, NodeCount: len(nodes),
			})
		default:
			c.Outages = append(c.Outages, OutageWindow{
				Source: fmt.Sprintf("outages[%d]", i),
				Start:  base, End: base.Add(o.Duration.D()),
				NodeCount: total,
			})
		}
	}

	c.Pipeline = core.DefaultPipelineConfig(c.Cluster.PreOp, c.Cluster.Op, total)
	if co := sc.Corruption; co != nil {
		ops, err := parseOps(co.Ops)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		fuzzSeed := co.Seed
		if fuzzSeed == 0 {
			fuzzSeed = rng.Derive("corruption").Uint64()
		}
		oversize := co.OversizeBytes
		if oversize == 0 {
			oversize = 64 << 10 // keep injected lines memory-sane
		}
		c.Corrupt = &logfuzz.Config{
			Seed: fuzzSeed, Rate: co.Rate, Ops: ops, OversizeBytes: oversize,
		}
		c.Pipeline.Lenient = true
	}
	if in := sc.Ingest; in != nil {
		if in.Lenient != nil {
			c.Pipeline.Lenient = *in.Lenient
		}
		c.Pipeline.MaxBadLines = in.MaxBadLines
		c.Pipeline.MaxBadFrac = in.MaxBadFrac
	}

	if r := sc.Replay; r != nil {
		norm := *r
		if norm.Chunk == 0 {
			norm.Chunk = 256
		}
		if norm.Horizon == 0 {
			norm.Horizon = Duration(stream.DefaultHorizon)
		}
		if norm.Redeliver == 0 {
			norm.Redeliver = 32
		}
		c.Replay = &norm
	}
	return c, nil
}
