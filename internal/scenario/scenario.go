// Package scenario is the declarative fault-campaign layer: a dependency-free
// JSON file format describing a fleet, a calibration profile, timed
// fault-injection events, chaos schedules, log corruption, collector outages,
// a streaming-replay plan, and assertions — compiled onto internal/faults,
// internal/cluster, internal/logfuzz, and internal/stream with seeded
// reproducibility. The same scenario file plus the same seed always produces
// a byte-identical JSON report, at any pipeline worker count.
//
// A campaign runs in up to four phases (run.go):
//
//  1. Simulate the fleet and capture the raw syslog byte stream.
//  2. Damage the record: blank collector-outage windows, then corrupt what
//     remains (logfuzz).
//  3. Analyze the damaged log through the batch pipeline and compare against
//     a clean-run reference (surviving fraction, table drift, availability).
//  4. Optionally replay the damaged log through the streaming engine under
//     process-level chaos — kill/restart with checkpoint resume, redelivery,
//     rotation mid-burst — and assert the stream's tables are byte-identical
//     to a batch run over the same delivered lines.
//
// See docs/scenarios.md for the format reference and the library catalog
// under scenarios/.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Duration is a JSON-friendly duration: a string in time.ParseDuration
// syntax, extended with a leading day component ("17d", "1d12h", "0.5d")
// because campaign horizons are naturally measured in days.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON parses a duration string, accepting the day extension.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"90m\" or \"17d\": %w", err)
	}
	v, err := ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// ParseDuration parses the extended duration syntax: an optional "<n>d" day
// component (n may be fractional) followed by an optional standard
// time.ParseDuration tail.
func ParseDuration(s string) (time.Duration, error) {
	if i := strings.IndexByte(s, 'd'); i >= 0 && !strings.ContainsAny(s[:i+1], "hmsuµn") {
		days, err := strconv.ParseFloat(strings.TrimPrefix(s[:i], "+"), 64)
		if err != nil {
			return 0, fmt.Errorf("scenario: bad day count in duration %q", s)
		}
		var tail time.Duration
		if rest := s[i+1:]; rest != "" {
			tail, err = time.ParseDuration(rest)
			if err != nil {
				return 0, fmt.Errorf("scenario: bad duration %q: %w", s, err)
			}
		}
		return time.Duration(days*24*float64(time.Hour)) + tail, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	return v, nil
}

// Scenario is the on-disk campaign description. Zero-valued optional fields
// resolve to profile defaults at compile time; see docs/scenarios.md for the
// full reference.
type Scenario struct {
	// Name identifies the campaign in reports and summaries.
	Name string `json:"name"`
	// Description says what the campaign demonstrates.
	Description string `json:"description,omitempty"`
	// Seed drives every random choice; cmd/stress -seed overrides it.
	Seed uint64 `json:"seed"`
	// Profile selects the calibration base: "a100" (Delta) or "hopper"
	// (the DeltaAI projection).
	Profile string `json:"profile"`
	// Scale is the calibration scale (1.0 = full Delta); default 0.005.
	Scale float64 `json:"scale,omitempty"`
	// Horizon truncates the operational period to this length; zero keeps
	// the profile's full period. The background fault quotas and the
	// workload compress into the shorter window.
	Horizon Duration `json:"horizon,omitempty"`
	// Background is "calibrated" (default: the profile's full fault
	// processes, faulty-GPU scenario, and health checks) or "none" (a quiet
	// fleet; only injected events fire).
	Background string `json:"background,omitempty"`
	// Workload toggles the job population; nil defaults to true for
	// calibrated background and false for none.
	Workload *bool `json:"workload,omitempty"`
	// Fleet overrides the profile's node layout.
	Fleet *Fleet `json:"fleet,omitempty"`
	// Events are the timed fault injections.
	Events []Event `json:"events,omitempty"`
	// Cascades are zone-scoped cascading chaos schedules.
	Cascades []Cascade `json:"cascades,omitempty"`
	// Skew adds chronic-node-skewed background processes (faults.ProcessSpec).
	Skew []Skew `json:"skew,omitempty"`
	// Outages blank log collection for node sets over time windows.
	Outages []Outage `json:"outages,omitempty"`
	// Corruption damages the surviving log bytes (internal/logfuzz).
	Corruption *Corruption `json:"corruption,omitempty"`
	// Ingest tunes the batch pipeline's lenient mode and error budgets.
	Ingest *Ingest `json:"ingest,omitempty"`
	// Replay, when present, streams the damaged log through the streaming
	// engine under process-level chaos.
	Replay *Replay `json:"replay,omitempty"`
	// Assert is the campaign's pass/fail contract.
	Assert Assertions `json:"assert"`
}

// Fleet overrides the calibration profile's node layout.
type Fleet struct {
	// Nodes is the total node count; templates split it by weight.
	Nodes int `json:"nodes"`
	// Templates are node shapes with node-count weights; nil means all
	// nodes use the 4-way template. Only 4- and 8-way boards exist.
	Templates []Template `json:"templates,omitempty"`
	// ChronicNodes sizes the error-prone node set; zero keeps the profile's.
	ChronicNodes int `json:"chronicNodes,omitempty"`
}

// Template is one node shape with its node-count weight.
type Template struct {
	// GPUs is the board size: 4 or 8.
	GPUs int `json:"gpus"`
	// Weight is the template's share of Fleet.Nodes (largest remainder).
	Weight int `json:"weight"`
}

// Event is one timed fault injection: count error instants of one kind over
// a window on one device.
type Event struct {
	// At is the offset of the burst start from the operational period start.
	At Duration `json:"at"`
	// Kind names the fault process: mmu, gsp, pmu, nvlink, bus-off,
	// uncorrectable, or sbe.
	Kind string `json:"kind"`
	// Count is the number of error instants.
	Count int `json:"count"`
	// Over is the burst window; zero is an instantaneous volley.
	Over Duration `json:"over,omitempty"`
	// Node pins the target node index; nil draws one from the seed.
	Node *int `json:"node,omitempty"`
	// GPU pins the device index; nil draws one (NVLink always uses the
	// fabric's link choice).
	GPU *int `json:"gpu,omitempty"`
	// Zone, with Zones, confines the node draw to one contiguous zone of
	// the fleet (0-based).
	Zone *int `json:"zone,omitempty"`
	// Zones is the zone count Zone indexes into.
	Zones int `json:"zones,omitempty"`
}

// Cascade is a cascading, zone-scoped chaos schedule: the fleet splits into
// Zones contiguous zones and zone i receives one Event-shaped burst starting
// Start + i*Stagger.
type Cascade struct {
	// Start is the first zone's burst start, offset from the operational
	// period start.
	Start Duration `json:"start"`
	// Kind is the fault process injected per zone.
	Kind string `json:"kind"`
	// Zones is how many contiguous zones the fleet splits into.
	Zones int `json:"zones"`
	// Stagger is the delay between consecutive zones' bursts.
	Stagger Duration `json:"stagger"`
	// Count is the error instants per zone.
	Count int `json:"count"`
	// Over is each zone burst's window.
	Over Duration `json:"over,omitempty"`
}

// Skew adds a chronic-node-skewed background fault process — a
// faults.ProcessSpec layered onto the compiled period.
type Skew struct {
	// Kind names the fault process.
	Kind string `json:"kind"`
	// Period is "op" (default) or "pre".
	Period string `json:"period,omitempty"`
	// Episodes is the quota over the period.
	Episodes int `json:"episodes"`
	// MeanSize is the mean errors per episode (geometric, min 1).
	MeanSize float64 `json:"meanSize"`
	// MeanGap is the mean in-episode error spacing.
	MeanGap Duration `json:"meanGap"`
	// ChronicFrac is the fraction of episodes landing on chronic nodes.
	ChronicFrac float64 `json:"chronicFrac"`
}

// Outage blanks log collection: lines from the affected nodes inside the
// window vanish from the record, as when a collector daemon is down.
type Outage struct {
	// Start is the outage start, offset from the operational period start.
	Start Duration `json:"start"`
	// Duration is each window's length.
	Duration Duration `json:"duration"`
	// Nodes lists affected node names; empty with Groups == 0 means the
	// whole fleet.
	Nodes []string `json:"nodes,omitempty"`
	// Groups, when positive, makes the outage rolling: the fleet splits
	// into Groups contiguous groups and group i is blanked during
	// [Start + i*Stride, Start + i*Stride + Duration).
	Groups int `json:"groups,omitempty"`
	// Stride is the rolling stagger between groups; zero means windows are
	// back to back (Stride = Duration).
	Stride Duration `json:"stride,omitempty"`
}

// Corruption configures the logfuzz injector over the post-outage log.
type Corruption struct {
	// Rate is the per-line damage probability.
	Rate float64 `json:"rate"`
	// Ops enables a subset of the repertoire by name (truncate, split,
	// merge, bitflip, dup-chunk, reorder, garbage, oversize); empty means
	// all.
	Ops []string `json:"ops,omitempty"`
	// OversizeBytes sizes injected oversized lines; default 64 KiB.
	OversizeBytes int `json:"oversizeBytes,omitempty"`
	// Seed overrides the corruption stream seed; zero derives it from the
	// scenario seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Ingest tunes the batch pipeline's corruption tolerance.
type Ingest struct {
	// Lenient forces lenient Stage I on or off; nil defaults to on exactly
	// when corruption is configured.
	Lenient *bool `json:"lenient,omitempty"`
	// MaxBadLines is the lenient absolute error budget (0 = unlimited).
	MaxBadLines int `json:"maxBadLines,omitempty"`
	// MaxBadFrac is the lenient corrupt-fraction budget (0 = unlimited).
	MaxBadFrac float64 `json:"maxBadFrac,omitempty"`
}

// Replay streams the damaged log through the streaming engine with
// process-level chaos and asserts batch/stream byte-equivalence.
type Replay struct {
	// Chunk is how many lines are ingested between watermark advances;
	// default 256.
	Chunk int `json:"chunk,omitempty"`
	// Horizon is the watermark horizon; default stream.DefaultHorizon.
	Horizon Duration `json:"horizon,omitempty"`
	// KillEvery kills and restarts the engine every N delivered lines,
	// resuming from the last checkpoint (taken every KillEvery/2 lines)
	// with redelivery; zero disables kill chaos.
	KillEvery int `json:"killEvery,omitempty"`
	// KillSweep runs the replay once per cadence in the list (a
	// checkpoint-interval sweep); it supersedes KillEvery.
	KillSweep []int `json:"killSweep,omitempty"`
	// Redeliver is how many pre-checkpoint lines the source re-delivers
	// after each restart (absorbed as duplicates); default 32.
	Redeliver int `json:"redeliver,omitempty"`
	// RotateEvery rotates the replayed log file every N lines and follows
	// it with the rotation-aware tailer; zero replays in process. Requires
	// a work directory (cmd/stress -dir, or the runner's default temp dir).
	RotateEvery int `json:"rotateEvery,omitempty"`
}

// Assertions is the declarative pass/fail contract. Nil thresholds are not
// evaluated. Two assertions are implicit: a configured ingest budget must
// trip exactly when ExpectBudgetExhausted says so, and a replay must produce
// byte-identical tables unless StreamEquivalence is explicitly false.
type Assertions struct {
	// MinSurvivingFraction floors coalesced-record survival versus the
	// clean run (damage-free simulation of the same seed).
	MinSurvivingFraction *float64 `json:"minSurvivingFraction,omitempty"`
	// MaxTableDrift caps Table I drift versus the clean run: the L1
	// distance of per-group per-period counts over the clean total.
	MaxTableDrift *float64 `json:"maxTableDrift,omitempty"`
	// MinAvailability floors the measured fleet availability.
	MinAvailability *float64 `json:"minAvailability,omitempty"`
	// MaxQuarantined caps late events quarantined during replay.
	MaxQuarantined *int64 `json:"maxQuarantined,omitempty"`
	// MaxBadLines caps corrupt lines the lenient batch ingest may see.
	MaxBadLines *int `json:"maxBadLines,omitempty"`
	// MinCoalesced floors the damaged run's coalesced record count (a
	// vacuousness guard: the campaign must actually produce data).
	MinCoalesced *int `json:"minCoalesced,omitempty"`
	// ExpectBudgetExhausted asserts the lenient ingest budget DOES trip —
	// the budget-exhaustion campaign's pass signal. Batch statistics and
	// replay are skipped when the budget trips as expected.
	ExpectBudgetExhausted bool `json:"expectBudgetExhausted,omitempty"`
	// StreamEquivalence, when explicitly false, downgrades the implicit
	// replay byte-equivalence assertion to a recorded observation.
	StreamEquivalence *bool `json:"streamEquivalence,omitempty"`
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes and validates a scenario document. Unknown fields are
// rejected so a typo'd assertion cannot silently pass.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks the scenario's static shape (everything that does not need
// the compiled fleet).
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	switch s.Profile {
	case "a100", "hopper":
	default:
		return fmt.Errorf("scenario %s: profile %q (want a100 or hopper)", s.Name, s.Profile)
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("scenario %s: scale %v out of (0,1]", s.Name, s.Scale)
	}
	if s.Horizon < 0 {
		return fmt.Errorf("scenario %s: negative horizon", s.Name)
	}
	switch s.Background {
	case "", "calibrated", "none":
	default:
		return fmt.Errorf("scenario %s: background %q (want calibrated or none)", s.Name, s.Background)
	}
	if f := s.Fleet; f != nil {
		if f.Nodes <= 0 {
			return fmt.Errorf("scenario %s: fleet needs a positive node count", s.Name)
		}
		weight := 0
		for _, t := range f.Templates {
			if t.GPUs != 4 && t.GPUs != 8 {
				return fmt.Errorf("scenario %s: fleet template with %d GPUs (want 4 or 8)", s.Name, t.GPUs)
			}
			if t.Weight < 0 {
				return fmt.Errorf("scenario %s: negative template weight", s.Name)
			}
			weight += t.Weight
		}
		if len(f.Templates) > 0 && weight == 0 {
			return fmt.Errorf("scenario %s: fleet template weights sum to zero", s.Name)
		}
		if f.ChronicNodes < 0 || f.ChronicNodes > f.Nodes {
			return fmt.Errorf("scenario %s: chronic nodes out of range", s.Name)
		}
	}
	for i, ev := range s.Events {
		if _, err := parseKind(ev.Kind); err != nil {
			return fmt.Errorf("scenario %s: events[%d]: %w", s.Name, i, err)
		}
		if ev.Count <= 0 {
			return fmt.Errorf("scenario %s: events[%d]: count must be positive", s.Name, i)
		}
		if ev.At < 0 || ev.Over < 0 {
			return fmt.Errorf("scenario %s: events[%d]: negative time field", s.Name, i)
		}
		if (ev.Zone == nil) != (ev.Zones == 0) {
			return fmt.Errorf("scenario %s: events[%d]: zone and zones go together", s.Name, i)
		}
		if ev.Zone != nil && (*ev.Zone < 0 || *ev.Zone >= ev.Zones) {
			return fmt.Errorf("scenario %s: events[%d]: zone %d out of [0,%d)", s.Name, i, *ev.Zone, ev.Zones)
		}
		if ev.Zone != nil && ev.Node != nil {
			return fmt.Errorf("scenario %s: events[%d]: node and zone are exclusive", s.Name, i)
		}
	}
	for i, c := range s.Cascades {
		if _, err := parseKind(c.Kind); err != nil {
			return fmt.Errorf("scenario %s: cascades[%d]: %w", s.Name, i, err)
		}
		if c.Zones <= 0 || c.Count <= 0 {
			return fmt.Errorf("scenario %s: cascades[%d]: zones and count must be positive", s.Name, i)
		}
		if c.Start < 0 || c.Stagger < 0 || c.Over < 0 {
			return fmt.Errorf("scenario %s: cascades[%d]: negative time field", s.Name, i)
		}
	}
	for i, sk := range s.Skew {
		if _, err := parseKind(sk.Kind); err != nil {
			return fmt.Errorf("scenario %s: skew[%d]: %w", s.Name, i, err)
		}
		switch sk.Period {
		case "", "op", "pre":
		default:
			return fmt.Errorf("scenario %s: skew[%d]: period %q (want op or pre)", s.Name, i, sk.Period)
		}
	}
	for i, o := range s.Outages {
		if o.Start < 0 || o.Duration <= 0 || o.Stride < 0 {
			return fmt.Errorf("scenario %s: outages[%d]: bad window", s.Name, i)
		}
		if o.Groups < 0 {
			return fmt.Errorf("scenario %s: outages[%d]: negative group count", s.Name, i)
		}
		if o.Groups > 0 && len(o.Nodes) > 0 {
			return fmt.Errorf("scenario %s: outages[%d]: nodes and groups are exclusive", s.Name, i)
		}
	}
	if c := s.Corruption; c != nil {
		if c.Rate <= 0 || c.Rate > 1 {
			return fmt.Errorf("scenario %s: corruption rate %v out of (0,1]", s.Name, c.Rate)
		}
		if _, err := parseOps(c.Ops); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if r := s.Replay; r != nil {
		if r.Chunk < 0 || r.KillEvery < 0 || r.Redeliver < 0 || r.RotateEvery < 0 || r.Horizon < 0 {
			return fmt.Errorf("scenario %s: replay: negative field", s.Name)
		}
		for _, k := range r.KillSweep {
			if k <= 0 {
				return fmt.Errorf("scenario %s: replay: killSweep cadences must be positive", s.Name)
			}
		}
		if r.RotateEvery > 0 && (r.KillEvery > 0 || len(r.KillSweep) > 0) {
			return fmt.Errorf("scenario %s: replay: rotation and kill chaos are separate modes", s.Name)
		}
	}
	if a := s.Assert; a.ExpectBudgetExhausted {
		lenientOff := s.Ingest != nil && s.Ingest.Lenient != nil && !*s.Ingest.Lenient
		noBudget := s.Ingest == nil || (s.Ingest.MaxBadLines == 0 && s.Ingest.MaxBadFrac == 0)
		if lenientOff || noBudget {
			return fmt.Errorf("scenario %s: expectBudgetExhausted needs a lenient ingest budget", s.Name)
		}
	}
	return nil
}
