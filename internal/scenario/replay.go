package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpuresilience/internal/cluster"
	"gpuresilience/internal/core"
	"gpuresilience/internal/stream"
)

// splitLines turns the damaged log bytes into the delivered line sequence,
// preserving empty interior lines (corruption produces them) and dropping
// only the terminal newline's empty tail.
func splitLines(data []byte) []string {
	s := string(data)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// replaySource is the feed name every replay mode ingests under, so source
// accounting is comparable across modes.
const replaySource = "replay"

// runReplays executes the compiled replay plan: a chaos-free reference pass
// first, then each chaos mode/cadence, comparing every finished run against
// both the reference engine's snapshot (byte-for-byte, including Stage I
// accounting) and the batch pipeline's table renderings.
func runReplays(c *Compiled, pcfg core.PipelineConfig, truth *cluster.Result,
	damaged []byte, batchDocs map[string]string, opts Options) ([]ReplayOutcome, error) {
	r := c.Replay
	lines := splitLines(damaged)
	scfg := stream.Config{
		Pipeline:  pcfg,
		Horizon:   r.Horizon.D(),
		Jobs:      truth.Jobs,
		Downtimes: truth.Downtimes,
		CPU:       truth.CPU,
	}

	refEng, err := replayPlain(scfg, lines, r.Chunk)
	if err != nil {
		return nil, err
	}
	refSnap, err := stream.BuildSnapshot(refEng)
	if err != nil {
		return nil, err
	}

	finish := func(eng *stream.Engine, out ReplayOutcome) (ReplayOutcome, error) {
		eng.FlushAll()
		snap, err := stream.BuildSnapshot(eng)
		if err != nil {
			return out, err
		}
		st := snap.Status
		for _, src := range st.Sources {
			out.Lines += src.Lines
			out.Dups += src.Dups
		}
		out.Quarantined = st.Quarantine.Late
		out.SealedEvents = st.SealedEvents
		streamRes, err := eng.Results()
		if err != nil {
			return out, err
		}
		streamDocs, err := renderTables(streamRes, truth.Downtimes, pcfg)
		if err != nil {
			return out, err
		}
		out.Equivalent = true
		for _, name := range stream.TableNames() {
			if streamDocs[name] != batchDocs[name] {
				out.Equivalent, out.Mismatch = false, "batch:"+name
				break
			}
			if string(snap.Tables[name].Text) != string(refSnap.Tables[name].Text) {
				out.Equivalent, out.Mismatch = false, "snapshot:"+name
				break
			}
		}
		return out, nil
	}

	var outcomes []ReplayOutcome
	appendOutcome := func(eng *stream.Engine, out ReplayOutcome, err error) error {
		if err != nil {
			return err
		}
		out, err = finish(eng, out)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, out)
		return nil
	}

	switch {
	case r.RotateEvery > 0:
		dir := opts.WorkDir
		if dir == "" {
			tmp, terr := os.MkdirTemp("", "stress-rotate-")
			if terr != nil {
				return nil, terr
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		eng, rotations, err := replayRotate(scfg, lines, r.Chunk, r.RotateEvery, dir)
		if err := appendOutcome(eng, ReplayOutcome{Mode: "rotate", Rotations: rotations}, err); err != nil {
			return nil, err
		}
	case len(r.KillSweep) > 0:
		for _, cadence := range r.KillSweep {
			eng, kills, cps, err := replayKill(scfg, lines, r.Chunk, cadence, r.Redeliver)
			out := ReplayOutcome{Mode: "kill", KillEvery: cadence, Kills: kills, Checkpoints: cps}
			if err := appendOutcome(eng, out, err); err != nil {
				return nil, err
			}
		}
	case r.KillEvery > 0:
		eng, kills, cps, err := replayKill(scfg, lines, r.Chunk, r.KillEvery, r.Redeliver)
		out := ReplayOutcome{Mode: "kill", KillEvery: r.KillEvery, Kills: kills, Checkpoints: cps}
		if err := appendOutcome(eng, out, err); err != nil {
			return nil, err
		}
	default:
		if err := appendOutcome(refEng, ReplayOutcome{Mode: "plain"}, nil); err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}

// replayPlain streams every line through a fresh engine, advancing the
// watermark every chunk lines — the chaos-free reference every chaos mode
// must match byte for byte.
func replayPlain(scfg stream.Config, lines []string, chunk int) (*stream.Engine, error) {
	eng, err := stream.New(scfg)
	if err != nil {
		return nil, err
	}
	feed := stream.NewFeed(eng, replaySource)
	for i, line := range lines {
		if err := feed.Line(line); err != nil {
			return nil, err
		}
		if (i+1)%chunk == 0 {
			eng.Advance()
		}
	}
	eng.FlushAll()
	return eng, nil
}

// replayKill streams lines through an engine that is killed every cadence
// lines and resumed from its last JSON-roundtripped checkpoint, with the
// source re-delivering the final redeliver pre-checkpoint lines (absorbed as
// duplicates). Lines consumed after the checkpoint are re-consumed by the
// resumed engine — at-least-once delivery with no loss. Checkpoints are
// taken every cadence/2 lines, and watermark advances happen at the same
// absolute line indexes as the chaos-free reference, so the final state is
// byte-comparable.
func replayKill(scfg stream.Config, lines []string, chunk, cadence, redeliver int) (*stream.Engine, int, int, error) {
	eng, err := stream.New(scfg)
	if err != nil {
		return nil, 0, 0, err
	}
	feed := stream.NewFeed(eng, replaySource)
	cpEvery := cadence / 2
	if cpEvery < 1 {
		cpEvery = 1
	}
	var lastCP *stream.Checkpoint
	cpLine := 0
	nextKill := cadence
	kills, checkpoints := 0, 0
	for cur := 0; cur < len(lines); {
		if err := feed.Line(lines[cur]); err != nil {
			return nil, kills, checkpoints, err
		}
		cur++
		if cur%chunk == 0 {
			eng.Advance()
		}
		if cur%cpEvery == 0 && cur > cpLine {
			cp := eng.Checkpoint()
			// Round-trip through JSON — exactly what a daemon writes to disk
			// and reloads — so serialization gaps cannot hide.
			data, merr := json.Marshal(cp)
			if merr != nil {
				return nil, kills, checkpoints, merr
			}
			var rt stream.Checkpoint
			if uerr := json.Unmarshal(data, &rt); uerr != nil {
				return nil, kills, checkpoints, uerr
			}
			lastCP = &rt
			cpLine = cur
			checkpoints++
		}
		if cur == nextKill && cur < len(lines) {
			// The absolute next-kill target advances exactly once per kill;
			// keying on cur%cadence would re-trigger forever after the
			// cursor rewinds to the checkpoint.
			nextKill += cadence
			kills++
			eng, err = stream.Resume(scfg, lastCP)
			if err != nil {
				return nil, kills, checkpoints, err
			}
			feed = stream.NewFeed(eng, replaySource)
			back := cpLine - redeliver
			if back < 0 {
				back = 0
			}
			feed.SetStart(int64(back))
			for i := back; i < cpLine; i++ {
				if err := feed.Line(lines[i]); err != nil {
					return nil, kills, checkpoints, err
				}
			}
			cur = cpLine
		}
	}
	return eng, kills, checkpoints, nil
}

// replayRotate writes the lines into a log file that rotates every
// rotateEvery lines mid-stream and follows it with the rotation-aware
// tailer, polling (and advancing the watermark) every chunk lines.
func replayRotate(scfg stream.Config, lines []string, chunk, rotateEvery int, dir string) (*stream.Engine, int, error) {
	eng, err := stream.New(scfg)
	if err != nil {
		return nil, 0, err
	}
	active := filepath.Join(dir, "replay.log")
	f, err := os.Create(active)
	if err != nil {
		return nil, 0, err
	}
	tailer := stream.NewTailer(active)
	defer tailer.Close()
	consume := func(_ string, lineNo int64, line string) error {
		return eng.ConsumeLine(replaySource, lineNo, line)
	}
	rotations := 0
	for i, line := range lines {
		if _, err := f.WriteString(line + "\n"); err != nil {
			f.Close()
			return nil, rotations, err
		}
		if (i+1)%chunk == 0 {
			if _, err := tailer.Poll(consume); err != nil {
				f.Close()
				return nil, rotations, err
			}
			eng.Advance()
		}
		if (i+1)%rotateEvery == 0 && i+1 < len(lines) {
			if err := f.Close(); err != nil {
				return nil, rotations, err
			}
			rotated := fmt.Sprintf("%s.%d", active, rotations+1)
			if err := os.Rename(active, rotated); err != nil {
				return nil, rotations, err
			}
			f, err = os.Create(active)
			if err != nil {
				return nil, rotations, err
			}
			rotations++
		}
	}
	if err := f.Close(); err != nil {
		return nil, rotations, err
	}
	// Drain whatever the chunk cadence left unread (including the rotated
	// file's tail — the tailer switches after draining).
	if _, err := tailer.Poll(consume); err != nil {
		return nil, rotations, err
	}
	if _, err := tailer.Poll(consume); err != nil {
		return nil, rotations, err
	}
	eng.Advance()
	return eng, rotations, nil
}
