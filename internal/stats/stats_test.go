package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var (
	preOp = Period{
		Name:  "pre-operational",
		Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC),
	}
	op = Period{
		Name:  "operational",
		Start: time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2025, 3, 14, 0, 0, 0, 0, time.UTC),
	}
)

func TestPeriodHours(t *testing.T) {
	if got := preOp.Hours(); math.Abs(got-273*24) > 1e-9 {
		t.Fatalf("pre-op hours = %v, want %v", got, 273*24)
	}
	if got := op.Days(); math.Abs(got-895) > 1e-9 {
		t.Fatalf("op days = %v, want 895", got)
	}
}

func TestPeriodContains(t *testing.T) {
	if !preOp.Contains(preOp.Start) {
		t.Fatal("start should be contained")
	}
	if preOp.Contains(preOp.End) {
		t.Fatal("end should be excluded")
	}
	if preOp.Contains(op.End) {
		t.Fatal("later time contained")
	}
}

func TestPeriodValidate(t *testing.T) {
	bad := Period{Name: "bad", Start: op.End, End: op.Start}
	if bad.Validate() == nil {
		t.Fatal("inverted period validated")
	}
	if preOp.Validate() != nil {
		t.Fatal("valid period rejected")
	}
}

// TestComputeMTBEMatchesPaperTableI checks the MTBE arithmetic against cells
// of Table I: op-period MMU (8,863 errors -> 2.4 h system / 257 h per node),
// pre-op MMU (1,078 -> 6.1 / 649), op GSP (3,857 -> 5.6 / 590).
func TestComputeMTBEMatchesPaperTableI(t *testing.T) {
	const nodes = 106
	cases := []struct {
		name    string
		period  Period
		count   int
		sys     float64
		perNode float64
	}{
		{"op MMU", op, 8863, 2.4, 257},
		{"pre-op MMU", preOp, 1078, 6.1, 649},
		{"op GSP", op, 3857, 5.6, 590},
		{"op NVLink", op, 1922, 11, 1185},
		{"op PMU", op, 77, 279, 29569},
		{"pre-op uncorrectable ECC", preOp, 46, 143, 15208},
	}
	for _, tc := range cases {
		got, err := ComputeMTBE(tc.count, tc.period, nodes)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(got.SystemWide-tc.sys) > 0.051*tc.sys {
			t.Errorf("%s: system MTBE = %.2f, want ~%.1f", tc.name, got.SystemWide, tc.sys)
		}
		if math.Abs(got.PerNode-tc.perNode) > 0.051*tc.perNode {
			t.Errorf("%s: per-node MTBE = %.0f, want ~%.0f", tc.name, got.PerNode, tc.perNode)
		}
	}
}

// TestPerNodeMTBEDegradation reproduces finding (i): 199 h pre-op vs 154 h
// op, a 23% reduction (burst-excluded counts 3,505 and 14,821).
func TestPerNodeMTBEDegradation(t *testing.T) {
	pre, err := ComputeMTBE(3505, preOp, 106)
	if err != nil {
		t.Fatal(err)
	}
	post, err := ComputeMTBE(14821, op, 106)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pre.PerNode-199) > 2 {
		t.Fatalf("pre-op per-node MTBE = %.1f, want ~199", pre.PerNode)
	}
	if math.Abs(post.PerNode-154) > 2 {
		t.Fatalf("op per-node MTBE = %.1f, want ~154", post.PerNode)
	}
	reduction := 1 - post.PerNode/pre.PerNode
	if math.Abs(reduction-0.23) > 0.015 {
		t.Fatalf("reduction = %.3f, want ~0.23", reduction)
	}
}

func TestComputeMTBEErrors(t *testing.T) {
	if _, err := ComputeMTBE(0, op, 106); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("zero count err = %v", err)
	}
	if _, err := ComputeMTBE(10, op, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := ComputeMTBE(10, Period{Start: op.End, End: op.Start}, 106); err == nil {
		t.Fatal("inverted period accepted")
	}
}

// TestAvailabilityMatchesPaper reproduces §V-C: MTTF 162 h, MTTR 0.88 h ->
// 99.5% availability, ~7 minutes downtime per day.
func TestAvailabilityMatchesPaper(t *testing.T) {
	a, err := Availability(162, 0.88)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.995) > 0.001 {
		t.Fatalf("availability = %.4f, want ~0.995", a)
	}
	down := DowntimePerDay(a)
	if down < 7*time.Minute || down > 8*time.Minute {
		t.Fatalf("downtime per day = %v, want ~7-8 min", down)
	}
}

func TestAvailabilityErrors(t *testing.T) {
	if _, err := Availability(0, 1); err == nil {
		t.Fatal("zero MTTF accepted")
	}
	if _, err := Availability(1, -1); err == nil {
		t.Fatal("negative MTTR accepted")
	}
}

func TestDowntimePerDayEdges(t *testing.T) {
	if DowntimePerDay(1) != 0 {
		t.Fatal("perfect availability should have zero downtime")
	}
	if DowntimePerDay(-0.5) != 24*time.Hour {
		t.Fatal("clamped availability should yield full-day downtime")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 || math.Abs(s.P50-2.5) > 1e-12 {
		t.Fatalf("mean/p50 = %v/%v", s.Mean, s.P50)
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Fatalf("empty summary = %+v", zero)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 100} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.TotalCount != 7 {
		t.Fatalf("total = %d", h.TotalCount)
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bounds = [%v, %v)", lo, hi)
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] >= 1 { // overflow excluded
		t.Fatalf("cdf tail = %v", cdf[len(cdf)-1])
	}
	if cdf[0] != 3.0/7 {
		t.Fatalf("cdf[0] = %v", cdf[0])
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestHistogramCDFEmpty(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("empty histogram CDF should be zero")
		}
	}
}

// TestMemoryVsHardwareRatio reproduces finding (ii)'s arithmetic: 92 memory
// errors vs 14,729 hardware+interconnect errors in the op period gives the
// paper's ~160x per-node MTBE ratio.
func TestMemoryVsHardwareRatio(t *testing.T) {
	mem, err := ComputeMTBE(92, op, 106)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := ComputeMTBE(14729, op, 106)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mem.PerNode / hw.PerNode
	if math.Abs(ratio-160) > 2 {
		t.Fatalf("memory/hardware MTBE ratio = %.1f, want ~160", ratio)
	}
	if RatioString(mem.PerNode, hw.PerNode) != "160x" {
		t.Fatalf("RatioString = %s", RatioString(mem.PerNode, hw.PerNode))
	}
	if RatioString(1, 0) != "inf" {
		t.Fatal("RatioString division by zero")
	}
}
