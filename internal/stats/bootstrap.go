package stats

import (
	"errors"
	"sort"

	"gpuresilience/internal/randx"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64 // interval endpoints, Lo <= Hi
	// Level is the confidence level, e.g. 0.95.
	Level float64
}

// Contains reports whether v falls inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// BootstrapMeanCI computes a percentile-bootstrap confidence interval for
// the mean of xs. The study's headline figures (MTBE from inter-error gaps,
// MTTR from repair intervals) are means of skewed samples, where the
// bootstrap is the standard tool.
func BootstrapMeanCI(xs []float64, level float64, iters int, rng *randx.Stream) (CI, error) {
	if len(xs) < 2 {
		return CI{}, errors.New("stats: need at least 2 samples for a CI")
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: confidence level out of (0,1)")
	}
	if iters < 100 {
		return CI{}, errors.New("stats: need at least 100 bootstrap iterations")
	}
	if rng == nil {
		return CI{}, errors.New("stats: nil rng")
	}
	means := make([]float64, iters)
	n := len(xs)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += xs[rng.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return CI{
		Lo:    Percentile(means, 100*alpha),
		Hi:    Percentile(means, 100*(1-alpha)),
		Level: level,
	}, nil
}
