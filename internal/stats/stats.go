// Package stats implements the reliability statistics of the paper's
// analysis stage: error counts, system-wide and per-node mean time between
// errors (MTBE), distribution summaries, histograms, and availability
// arithmetic.
//
// The MTBE conventions follow §III-B and Table I exactly: the system-wide
// MTBE over a measurement period is the period length in hours divided by the
// coalesced error count, and the per-node MTBE is the system-wide MTBE
// multiplied by the number of nodes.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Period is a measurement window, e.g. Delta's pre-operational or
// operational period.
type Period struct {
	Name  string    // label used in tables, e.g. "operational"
	Start time.Time // inclusive window start
	End   time.Time // exclusive window end
}

// Hours returns the period length in hours.
func (p Period) Hours() float64 { return p.End.Sub(p.Start).Hours() }

// Days returns the period length in days.
func (p Period) Days() float64 { return p.End.Sub(p.Start).Hours() / 24 }

// Contains reports whether t falls within [Start, End).
func (p Period) Contains(t time.Time) bool {
	return !t.Before(p.Start) && t.Before(p.End)
}

// Validate returns an error if the period is empty or inverted.
func (p Period) Validate() error {
	if !p.Start.Before(p.End) {
		return fmt.Errorf("stats: period %q has non-positive length", p.Name)
	}
	return nil
}

// MTBE holds mean-time-between-errors figures in hours.
type MTBE struct {
	SystemWide float64 // hours between errors anywhere in the system
	PerNode    float64 // hours a single node runs before an error
}

// ErrNoEvents is returned when an MTBE is requested for a zero count; the
// paper renders these cells as "-".
var ErrNoEvents = errors.New("stats: no events in period")

// ComputeMTBE returns MTBE figures for count errors observed over period on a
// system of nodes nodes.
func ComputeMTBE(count int, period Period, nodes int) (MTBE, error) {
	if err := period.Validate(); err != nil {
		return MTBE{}, err
	}
	if nodes <= 0 {
		return MTBE{}, fmt.Errorf("stats: non-positive node count %d", nodes)
	}
	if count <= 0 {
		return MTBE{}, ErrNoEvents
	}
	sys := period.Hours() / float64(count)
	return MTBE{SystemWide: sys, PerNode: sys * float64(nodes)}, nil
}

// Availability returns MTTF/(MTTF+MTTR). Units must match; the result is a
// fraction in (0, 1].
func Availability(mttf, mttr float64) (float64, error) {
	if mttf <= 0 || mttr < 0 {
		return 0, fmt.Errorf("stats: invalid MTTF %v / MTTR %v", mttf, mttr)
	}
	return mttf / (mttf + mttr), nil
}

// DowntimePerDay converts an availability fraction into downtime per day.
func DowntimePerDay(availability float64) time.Duration {
	if availability >= 1 {
		return 0
	}
	if availability < 0 {
		availability = 0
	}
	return time.Duration((1 - availability) * float64(24*time.Hour))
}

// Summary captures the distribution summary used by Table III (mean, median,
// 99th percentile) plus extremes.
type Summary struct {
	N    int     // sample count
	Mean float64 // arithmetic mean
	P50  float64 // median
	P99  float64 // 99th percentile
	Min  float64 // smallest sample
	Max  float64 // largest sample
	Sum  float64 // total of all samples
}

// Summarize computes a Summary of xs. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:    len(sorted),
		Mean: sum / float64(len(sorted)),
		P50:  Percentile(sorted, 50),
		P99:  Percentile(sorted, 99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Sum:  sum,
	}
}

// Percentile returns the p-th percentile (0-100) of sorted, using linear
// interpolation between closest ranks. sorted must be ascending; it returns
// NaN for empty input.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bucket histogram over [Min, Max) with overflow and
// underflow buckets, used to render Figure 2.
type Histogram struct {
	Min, Max   float64 // bucketed range; values land in [Min, Max)
	Counts     []int   // per-bucket counts, evenly spanning [Min, Max)
	Underflow  int     // samples below Min
	Overflow   int     // samples at or above Max
	TotalCount int     // all samples, including under/overflow
}

// NewHistogram returns a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 || max <= min {
		return nil, fmt.Errorf("stats: invalid histogram [%v, %v) x%d", min, max, n)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.TotalCount++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard against floating-point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*width, h.Min + float64(i+1)*width
}

// CDF returns the cumulative fraction of observations at or below each
// bucket's upper bound (underflow included, overflow excluded from all but
// implied tail).
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.TotalCount == 0 {
		return out
	}
	cum := h.Underflow
	for i, c := range h.Counts {
		cum += c
		out[i] = float64(cum) / float64(h.TotalCount)
	}
	return out
}

// RatioString formats a ratio like the paper's "160x" comparisons.
func RatioString(num, den float64) string {
	if den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0fx", num/den)
}
