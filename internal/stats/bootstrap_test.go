package stats

import (
	"testing"

	"gpuresilience/internal/randx"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// Exponential samples with true mean 10: a 95% CI from a large sample
	// should cover 10 and be reasonably tight.
	rng := randx.NewStream(1)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Exponential(0.1)
	}
	ci, err := BootstrapMeanCI(xs, 0.95, 1000, randx.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(10) {
		t.Fatalf("CI [%v, %v] misses the true mean 10", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo > 2 {
		t.Fatalf("CI too wide: [%v, %v]", ci.Lo, ci.Hi)
	}
	if ci.Lo >= ci.Hi || ci.Level != 0.95 {
		t.Fatalf("CI malformed: %+v", ci)
	}
}

func TestBootstrapMeanCICoverageRate(t *testing.T) {
	// Across many replications, the 90% CI should cover the truth roughly
	// 90% of the time (allow a generous band for the small sample size).
	rng := randx.NewStream(3)
	covered := 0
	const reps = 200
	for r := 0; r < reps; r++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = rng.Exponential(0.5) // mean 2
		}
		ci, err := BootstrapMeanCI(xs, 0.90, 400, rng.Derive("b"))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(2) {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.80 || rate > 0.98 {
		t.Fatalf("coverage rate = %.2f, want ~0.90", rate)
	}
}

func TestBootstrapMeanCIValidation(t *testing.T) {
	rng := randx.NewStream(4)
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 1000, rng); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1, 2}, 1.5, 1000, rng); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1, 2}, 0.95, 10, rng); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1, 2}, 0.95, 1000, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
