// Package simclock implements the discrete-event simulation engine that
// drives the Delta cluster model. Events execute in strict timestamp order
// with deterministic tie-breaking (priority, then scheduling sequence), so a
// simulation is fully reproducible given the same inputs.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrPastEvent is returned when an event is scheduled before the current
// simulation time.
var ErrPastEvent = errors.New("simclock: event scheduled in the past")

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	seq   uint64
	index int // heap index; -1 once popped or cancelled
	at    time.Time
	pri   int
	fn    func()
}

// Time returns the time the event is scheduled to fire.
func (h *Handle) Time() time.Time { return h.at }

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use; the simulation model is deterministic and single-threaded
// by design.
type Engine struct {
	now     time.Time
	queue   eventHeap
	nextSeq uint64
	steps   uint64
}

// NewEngine returns an engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at time at with priority 0.
func (e *Engine) Schedule(at time.Time, fn func()) (*Handle, error) {
	return e.SchedulePri(at, 0, fn)
}

// SchedulePri enqueues fn to run at time at. Events with equal timestamps run
// in ascending priority order; equal (time, priority) events run in
// scheduling order. Scheduling at exactly the current time is allowed and the
// event runs before the clock advances further.
func (e *Engine) SchedulePri(at time.Time, pri int, fn func()) (*Handle, error) {
	if at.Before(e.now) {
		return nil, fmt.Errorf("%w: at=%s now=%s", ErrPastEvent, at, e.now)
	}
	if fn == nil {
		return nil, errors.New("simclock: nil event function")
	}
	h := &Handle{seq: e.nextSeq, at: at, pri: pri, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, h)
	return h, nil
}

// After enqueues fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) (*Handle, error) {
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(h *Handle) bool {
	if h == nil || h.index < 0 {
		return false
	}
	heap.Remove(&e.queue, h.index)
	h.index = -1
	h.fn = nil
	return true
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	h, ok := heap.Pop(&e.queue).(*Handle)
	if !ok {
		return false
	}
	h.index = -1
	e.now = h.at
	e.steps++
	fn := h.fn
	h.fn = nil
	fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// until. The clock is left at until (or at the last event time if that is
// later than until, which cannot happen by construction).
func (e *Engine) Run(until time.Time) {
	for len(e.queue) > 0 && !e.queue[0].at.After(until) {
		e.Step()
	}
	if e.now.Before(until) {
		e.now = until
	}
}

// RunAll executes events until the queue is empty.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// eventHeap orders by (time, priority, sequence).
type eventHeap []*Handle

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface: earliest time first, ties broken by
// priority then insertion sequence, keeping runs deterministic.
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface and keeps handle indexes current.
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Handle)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
