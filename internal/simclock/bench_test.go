package simclock

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndStep(b *testing.B) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.After(time.Duration(i%1000)*time.Millisecond, fn); err != nil {
			b.Fatal(err)
		}
		if i%2 == 1 { // keep the heap bounded
			e.Step()
			e.Step()
		}
	}
}

func BenchmarkCancel(b *testing.B) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	fn := func() {}
	handles := make([]*Handle, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := e.After(time.Hour, fn)
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
		if len(handles) == 1024 {
			for _, h := range handles {
				e.Cancel(h)
			}
			handles = handles[:0]
		}
	}
}
