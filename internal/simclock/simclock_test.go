package simclock

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	for i, offset := range []time.Duration{5 * time.Second, 1 * time.Second, 3 * time.Second} {
		i := i
		if _, err := e.Schedule(t0.Add(offset), func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakPriorityThenSeq(t *testing.T) {
	e := NewEngine(t0)
	at := t0.Add(time.Minute)
	var order []string
	add := func(name string, pri int) {
		if _, err := e.SchedulePri(at, pri, func() { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	add("b-pri1", 1)
	add("a-pri0-first", 0)
	add("c-pri0-second", 0)
	e.RunAll()
	want := []string{"a-pri0-first", "c-pri0-second", "b-pri1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(t0)
	var seen time.Time
	_, err := e.Schedule(t0.Add(time.Hour), func() { seen = e.Now() })
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !seen.Equal(t0.Add(time.Hour)) {
		t.Fatalf("event saw clock %v", seen)
	}
	if !e.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine(t0)
	if _, err := e.Schedule(t0.Add(-time.Second), func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("err = %v, want ErrPastEvent", err)
	}
}

func TestScheduleNilFnRejected(t *testing.T) {
	e := NewEngine(t0)
	if _, err := e.Schedule(t0, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestScheduleAtNowRuns(t *testing.T) {
	e := NewEngine(t0)
	ran := false
	if _, err := e.Schedule(t0, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !ran {
		t.Fatal("event at current time did not run")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(t0)
	ran := false
	h, err := e.Schedule(t0.Add(time.Second), func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(h) {
		t.Fatal("first cancel returned false")
	}
	if e.Cancel(h) {
		t.Fatal("second cancel returned true")
	}
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := NewEngine(t0)
	h, err := e.Schedule(t0.Add(time.Second), func() {})
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if e.Cancel(h) {
		t.Fatal("cancel after fire returned true")
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine(t0)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Minute, time.Hour, 2 * time.Hour} {
		d := d
		if _, err := e.Schedule(t0.Add(d), func() { fired = append(fired, d) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(t0.Add(90 * time.Minute))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if !e.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Fatalf("clock = %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine(t0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			if _, err := e.After(time.Second, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.After(time.Second, tick); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if !e.Now().Equal(t0.Add(10 * time.Second)) {
		t.Fatalf("clock = %v", e.Now())
	}
	if e.Steps() != 10 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

// Property: for any set of offsets, events fire in nondecreasing time order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(t0)
		var last time.Time
		ok := true
		for _, off := range offsets {
			at := t0.Add(time.Duration(off) * time.Second)
			if _, err := e.Schedule(at, func() {
				if e.Now().Before(last) {
					ok = false
				}
				last = e.Now()
			}); err != nil {
				return false
			}
		}
		e.RunAll()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
